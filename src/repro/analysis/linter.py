"""The comlint engine: AST checks, suppressions, file walking.

Zero dependencies beyond the standard library.  One parse per file feeds
every rule; suppression comments are read straight from the source lines
(``# comlint: disable=DET001`` on the offending line, or
``# comlint: disable-file=DET001`` anywhere for a whole-file waiver).

The checks are deliberately *heuristic* — this is a project linter, not a
type checker.  Each heuristic is documented on its method; false positives
are expected to be rare and are silenced with an inline suppression that
doubles as reviewer-visible documentation.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.rules import RULES, Rule
from repro.errors import ConfigurationError

__all__ = ["Violation", "lint_source", "lint_file", "lint_paths", "iter_python_files"]

#: random-module functions that draw from (or reseed) the global stream.
_RANDOM_MODULE_FUNCTIONS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "uniform",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "seed",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "betavariate",
        "gammavariate",
        "triangular",
        "paretovariate",
        "vonmisesvariate",
        "weibullvariate",
        "getrandbits",
        "binomialvariate",
    }
)

#: (module, attribute) pairs that read the wall clock.
_WALL_CLOCK_CALLS = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
    }
)

#: Probe emission methods whose call sites must be enabled-guarded.
_PROBE_METHODS = frozenset({"span", "instant", "count", "observe", "gauge"})

#: Builtin constructors of mutable containers.
_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})

#: The module whose import marks a file as event-sink-aware (OBS002).
_EVENT_SINK_MODULE = "repro.obs.events"

#: Event-sink names whose import from ``repro.obs`` marks the file too.
_EVENT_SINK_NAMES = frozenset(
    {
        "EventLog",
        "EventSink",
        "GatewayEvent",
        "NULL_EVENT_SINK",
        "encode_canonical",
        "canonical_projection",
        "row_digest",
    }
)

#: (module, attribute) calls that block the event loop (ASY001).
_BLOCKING_MODULE_CALLS = frozenset(
    {
        ("time", "sleep"),
        ("os", "fdatasync"),
        ("os", "fsync"),
        ("os", "sync"),
        ("socket", "create_connection"),
    }
)

#: Method names that perform whole-file I/O on any receiver (ASY001);
#: unambiguous pathlib helpers, so receiver typing is not needed.
_BLOCKING_FILE_METHODS = frozenset(
    {"write_text", "write_bytes", "read_text", "read_bytes"}
)

#: Call names that spawn an unsupervised task (ASY003) when discarded.
_TASK_SPAWNERS = frozenset({"create_task", "ensure_future"})

#: Source-comment markers driving the ASY004 ownership analysis.
_LOOP_OWNED_MARKER = "comlint: loop-owned"
_LOOP_ENTRY_MARKER = "comlint: loop-entry"

#: Encoder/decoder pairing suffixes for WIRE001.
_WIRE_ENCODER_SUFFIX = "_to_wire"
_WIRE_DECODER_SUFFIX = "_from_wire"

#: Decoder call methods whose first string argument reads a field.
_DICT_READ_METHODS = frozenset({"get", "pop"})


@dataclass(frozen=True, slots=True)
class Violation:
    """One lint finding.

    ``path`` is stored POSIX-relative to the lint root so reports and
    baseline fingerprints are machine-independent.
    """

    rule_id: str
    path: str
    line: int
    column: int
    message: str
    source_line: str = ""

    def render(self) -> str:
        """The canonical one-line text form."""
        return (
            f"{self.path}:{self.line}:{self.column + 1}: "
            f"{self.rule_id} {self.message}"
        )


class _Suppressions:
    """Per-file suppression state parsed from comment text."""

    def __init__(self, source: str):
        self.by_line: dict[int, set[str]] = {}
        self.file_wide: set[str] = set()
        for number, text in enumerate(source.splitlines(), start=1):
            marker = text.find("# comlint:")
            if marker < 0:
                continue
            directive = text[marker + len("# comlint:") :].strip()
            if directive.startswith("disable-file="):
                self.file_wide.update(
                    self._parse_ids(directive[len("disable-file=") :])
                )
            elif directive.startswith("disable="):
                self.by_line.setdefault(number, set()).update(
                    self._parse_ids(directive[len("disable=") :])
                )

    @staticmethod
    def _parse_ids(raw: str) -> set[str]:
        ids = {part.strip() for part in raw.split(",") if part.strip()}
        return {"all"} if "all" in ids else ids

    def active(self, rule_id: str, line: int) -> bool:
        """True iff ``rule_id`` is suppressed at ``line``."""
        for pool in (self.file_wide, self.by_line.get(line, ())):
            if "all" in pool or rule_id in pool:
                return True
        return False


class _Checker(ast.NodeVisitor):
    """One pass over a module AST, emitting violations for every rule."""

    def __init__(self, path: str, source: str, rules: dict[str, Rule]):
        self.path = path
        self.lines = source.splitlines()
        self.rules = rules
        self.suppressions = _Suppressions(source)
        self.violations: list[Violation] = []
        #: Stack of (function node, line of first `.enabled` mention or None).
        self._function_stack: list[ast.AST] = []
        #: Per-function lines on which `.enabled` is read (OBS001 heuristic).
        self._enabled_lines: dict[ast.AST, list[int]] = {}
        #: Ancestor chain maintained by generic_visit wrapper.
        self._parents: list[ast.AST] = []
        #: Class bodies currently decorated as dataclasses.
        self._dataclass_depth = 0
        #: OBS002 state: whether an event-sink import was seen, and every
        #: json.dumps/json.dump call site.  Resolved in :meth:`finalize`
        #: because the import may appear *after* the call in source order
        #: (function-local imports are common in this codebase).
        self._imports_event_sink = False
        self._json_dump_calls: list[ast.Call] = []
        #: DET005 state: local names bound to the numpy module and to the
        #: numpy.random submodule, plus every ``<name>.<attr>`` access,
        #: paired up in :meth:`finalize` for the same source-order reason
        #: as OBS002 (lazy function-local numpy imports are the norm).
        self._numpy_aliases: set[str] = set()
        self._numpy_random_aliases: set[str] = set()
        self._attribute_reads: list[tuple[str, str, ast.Attribute]] = []
        #: ASY002 state: names of coroutine functions defined anywhere in
        #: this module (functions and methods pooled), names also defined
        #: as *sync* somewhere (ambiguous — excluded), and every bare
        #: statement-expression call, paired up in :meth:`finalize`.
        self._async_def_names: set[str] = set()
        self._sync_def_names: set[str] = set()
        self._bare_statement_calls: list[ast.Call] = []
        #: The module node, kept for the whole-module WIRE001/ASY004
        #: passes in :meth:`finalize`.
        self._module: ast.Module | None = None

    # -- plumbing ----------------------------------------------------------

    def emit(self, rule_id: str, node: ast.AST, message: str) -> None:
        rule = self.rules.get(rule_id)
        if rule is None or rule.allows(self.path):
            return
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        if self.suppressions.active(rule_id, line):
            return
        source_line = (
            self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        )
        self.violations.append(
            Violation(rule_id, self.path, line, column, message, source_line)
        )

    def visit(self, node: ast.AST) -> None:
        self._parents.append(node)
        try:
            super().visit(node)
        finally:
            self._parents.pop()

    def visit_Module(self, node: ast.Module) -> None:
        self._module = node
        self.generic_visit(node)

    def _in_async_function(self) -> bool:
        """True iff the current node sits inside an ``async def`` body.

        The innermost enclosing function decides: a sync helper nested
        inside an async function runs wherever it is called from, so it
        is out of scope for ASY001 (flagging it would double-report the
        call site).
        """
        for ancestor in reversed(self._parents[:-1]):
            if isinstance(ancestor, ast.AsyncFunctionDef):
                return True
            if isinstance(ancestor, (ast.FunctionDef, ast.Lambda)):
                return False
        return False

    @staticmethod
    def _call_name(node: ast.Call) -> str | None:
        """The trailing name of a call target (``f`` or ``obj.f``)."""
        if isinstance(node.func, ast.Name):
            return node.func.id
        if isinstance(node.func, ast.Attribute):
            return node.func.attr
        return None

    def _line_has_marker(self, lineno: int, marker: str) -> bool:
        if 0 < lineno <= len(self.lines):
            return marker in self.lines[lineno - 1]
        return False

    # -- DET001 / DET002 / DET004: forbidden calls -------------------------

    def visit_Call(self, node: ast.Call) -> None:
        function = node.func
        if isinstance(function, ast.Attribute) and isinstance(
            function.value, ast.Name
        ):
            owner, attribute = function.value.id, function.attr
            if owner == "random" and attribute == "Random":
                self.emit(
                    "DET001",
                    node,
                    "direct random.Random(...) construction; derive the "
                    "stream via repro.utils.rng (derive_rng / SeedSequence)",
                )
            elif owner == "random" and attribute in _RANDOM_MODULE_FUNCTIONS:
                self.emit(
                    "DET001",
                    node,
                    f"module-level random.{attribute}() draws from the "
                    "shared global stream; use a labelled rng from "
                    "repro.utils.rng",
                )
            elif (owner, attribute) in _WALL_CLOCK_CALLS:
                self.emit(
                    "DET002",
                    node,
                    f"wall-clock read {owner}.{attribute}() outside the "
                    "timing allowlist; use repro.utils.timer.Stopwatch or "
                    "the obs wall-clock keys",
                )
            elif owner == "json" and attribute in {"dumps", "dump"}:
                self._json_dump_calls.append(node)
        elif isinstance(function, ast.Name):
            if function.id == "hash" and node.args:
                self.emit(
                    "DET004",
                    node,
                    "builtin hash() is salted per process; use the "
                    "SHA-256 derivation in repro.utils.rng for seeds and "
                    "explicit sort keys for ordering",
                )
            elif function.id in {"set", "frozenset"}:
                self._check_set_iteration_parent(node)
        self._check_probe_call(node)
        if self._in_async_function():
            self._check_blocking_call(node)
        self.generic_visit(node)

    # -- ASY001: blocking calls inside async functions -----------------------

    def _check_blocking_call(self, node: ast.Call) -> None:
        """Emit ASY001 for a call that blocks the event loop.

        Heuristic by shape: module-level blocking functions
        (``time.sleep``, ``os.fdatasync`` …), anything on ``subprocess``,
        the builtin ``open``, and the unambiguous pathlib whole-file
        helpers.  Method calls like ``file.write`` are *not* matched —
        receiver typing is out of reach for an AST linter, and the
        sanctioned seams wrap those anyway.
        """
        function = node.func
        if isinstance(function, ast.Attribute):
            if isinstance(function.value, ast.Name):
                owner, attribute = function.value.id, function.attr
                if (owner, attribute) in _BLOCKING_MODULE_CALLS:
                    self.emit(
                        "ASY001",
                        node,
                        f"blocking {owner}.{attribute}(...) inside an async "
                        "function stalls every queued decision; offload "
                        "through the journal flush seam or pace via the "
                        "service clock",
                    )
                    return
                if owner == "subprocess":
                    self.emit(
                        "ASY001",
                        node,
                        f"subprocess.{attribute}(...) blocks the event loop "
                        "for the child's full runtime; use an asyncio "
                        "subprocess API or move it off the loop",
                    )
                    return
            if function.attr in _BLOCKING_FILE_METHODS:
                self.emit(
                    "ASY001",
                    node,
                    f".{function.attr}(...) performs whole-file I/O inside "
                    "an async function; read/write before entering the "
                    "loop or offload through the sanctioned flush seam",
                )
        elif isinstance(function, ast.Name) and function.id == "open":
            self.emit(
                "ASY001",
                node,
                "builtin open(...) inside an async function performs "
                "blocking file I/O; open files before entering the loop "
                "or offload through the sanctioned flush seam",
            )

    # -- ASY002 / ASY003: discarded coroutines and orphaned tasks ------------

    def visit_Expr(self, node: ast.Expr) -> None:
        value = node.value
        if isinstance(value, ast.Call):
            name = self._call_name(value)
            if name in _TASK_SPAWNERS:
                self.emit(
                    "ASY003",
                    value,
                    f"{name}(...) result discarded; the loop holds tasks "
                    "weakly, so an unreferenced task can be garbage-"
                    "collected mid-flight — keep the handle or attach a "
                    "done-callback",
                )
            elif isinstance(value.func, ast.Name) or (
                isinstance(value.func, ast.Attribute)
                and isinstance(value.func.value, ast.Name)
                and value.func.value.id in {"self", "cls"}
            ):
                # Candidate ASY002: bare name or self./cls. method call,
                # resolved in finalize once every module-local
                # `async def` name is known.  Foreign receivers
                # (`writer.close()`) are excluded — their methods only
                # coincide with local coroutine names by accident.
                self._bare_statement_calls.append(value)
        self.generic_visit(node)

    # -- OBS002: raw serialization in event-sink-aware modules --------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == _EVENT_SINK_MODULE or alias.name.startswith(
                f"{_EVENT_SINK_MODULE}."
            ):
                self._imports_event_sink = True
            if alias.name == "numpy":
                self._numpy_aliases.add(alias.asname or "numpy")
            elif alias.name == "numpy.random":
                if alias.asname is None:
                    # ``import numpy.random`` binds the top-level package.
                    self._numpy_aliases.add("numpy")
                else:
                    self._numpy_random_aliases.add(alias.asname)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if module == _EVENT_SINK_MODULE:
            self._imports_event_sink = True
        elif module == "repro.obs" and any(
            alias.name in _EVENT_SINK_NAMES for alias in node.names
        ):
            self._imports_event_sink = True
        if module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self._numpy_random_aliases.add(alias.asname or "random")
        elif module == "numpy.random" or module.startswith("numpy.random."):
            self.emit(
                "DET005",
                node,
                "import from numpy.random outside the sanctioned kernel "
                "seam; draw through the pinned per-call generators in "
                "repro.core.payment_kernel",
            )
        self.generic_visit(node)

    # -- DET005: numpy.random outside the kernel seam ----------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name):
            self._attribute_reads.append((node.value.id, node.attr, node))
        self.generic_visit(node)

    def _finalize_numpy_random(self) -> None:
        """Emit DET005 for ``<numpy alias>.random`` / ``<random alias>.*``.

        Matching on the ``np.random`` attribute node itself (rather than
        the full ``np.random.default_rng`` chain) reports each chain once
        and also catches the bare submodule being passed around.
        """
        for owner, attribute, node in self._attribute_reads:
            if owner in self._numpy_aliases and attribute == "random":
                self.emit(
                    "DET005",
                    node,
                    f"{owner}.random access outside the sanctioned kernel "
                    "seam; draw through the pinned per-call generators in "
                    "repro.core.payment_kernel",
                )
            elif owner in self._numpy_random_aliases:
                self.emit(
                    "DET005",
                    node,
                    f"numpy.random (as {owner!r}) use outside the "
                    "sanctioned kernel seam; draw through the pinned "
                    "per-call generators in repro.core.payment_kernel",
                )

    def finalize(self) -> None:
        """Checks needing whole-module context, run after the AST pass.

        OBS002 pairs two facts that may appear in either source order
        (this codebase imports lazily inside functions): the module
        touches the event-sink layer, and it also calls ``json.dumps`` /
        ``json.dump`` directly.  ASY002 similarly needs the full
        ``async def`` name inventory before bare calls can be judged,
        and ASY004/WIRE001 analyse whole class bodies.
        """
        self._finalize_unawaited_coroutines()
        self._finalize_loop_ownership()
        self._finalize_wire_parity()
        self._finalize_numpy_random()
        if not self._imports_event_sink:
            return
        for call in self._json_dump_calls:
            self.emit(
                "OBS002",
                call,
                "direct json serialization in an event-sink-aware module; "
                "encode via repro.obs.events.encode_canonical (or emit "
                "through the EventLog) so COMEVT1 byte-identity digests "
                "stay comparable",
            )

    # -- ASY002: bare calls of module-local coroutine functions --------------

    def _finalize_unawaited_coroutines(self) -> None:
        """Emit ASY002 for statement-expression calls of coroutines.

        Scope is module-local names (functions and methods pooled): a
        bare call whose trailing name matches an ``async def`` defined
        in this file builds a coroutine and throws it away.  Names also
        defined as a *sync* function somewhere in the file are
        ambiguous and skipped.
        """
        for call in self._bare_statement_calls:
            name = self._call_name(call)
            if name in self._async_def_names and name not in self._sync_def_names:
                self.emit(
                    "ASY002",
                    call,
                    f"{name}(...) is a coroutine function; a bare call "
                    "builds the coroutine without running it — await it "
                    "or hand it to asyncio.create_task/gather",
                )

    # -- ASY004: loop-owned state mutated off the decision loop --------------

    def _finalize_loop_ownership(self) -> None:
        if self._module is None:
            return
        for node in ast.walk(self._module):
            if isinstance(node, ast.ClassDef):
                self._check_class_ownership(node)

    def _check_class_ownership(self, klass: ast.ClassDef) -> None:
        """Per-class ownership analysis driven by source markers.

        Attributes assigned on a ``# comlint: loop-owned`` line are the
        guarded set.  Allowed mutators are methods reachable (through
        ``self.``/``cls.`` calls) from the decision loop's roots —
        ``_decision_loop`` plus any method whose ``def`` line carries
        ``# comlint: loop-entry`` — or from setup code (``__init__``
        and classmethods/staticmethods, which construct instances
        before any loop exists).  Everything else runs on a caller task
        and must not touch the guarded attributes.
        """
        methods = {
            statement.name: statement
            for statement in klass.body
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        owned: set[str] = set()
        for method in methods.values():
            for child in ast.walk(method):
                if isinstance(
                    child, (ast.Assign, ast.AnnAssign)
                ) and self._line_has_marker(child.lineno, _LOOP_OWNED_MARKER):
                    targets = (
                        child.targets
                        if isinstance(child, ast.Assign)
                        else [child.target]
                    )
                    for target in targets:
                        attribute = self._self_attribute_of(target)
                        if attribute is not None:
                            owned.add(attribute)
        if not owned:
            return
        edges = {
            name: self._self_calls(method) for name, method in methods.items()
        }
        roots = {
            name
            for name, method in methods.items()
            if name == "_decision_loop"
            or name == "__init__"
            or self._is_classmethod_or_static(method)
            or self._line_has_marker(method.lineno, _LOOP_ENTRY_MARKER)
        }
        allowed = self._reachable(roots, edges)
        for name in sorted(set(methods) - allowed):
            for attribute, node in self._owned_mutations(methods[name], owned):
                self.emit(
                    "ASY004",
                    node,
                    f"self.{attribute} is loop-owned but {name}() is not on "
                    "the decision loop's call graph; route the mutation "
                    "through the loop, or mark a deliberate cross-task "
                    "touch with an inline suppression plus "
                    "OwnershipGuard.handoff()",
                )

    @staticmethod
    def _self_attribute_of(node: ast.expr) -> str | None:
        """``self.attr`` / ``self.attr[...]`` → ``attr`` (else None)."""
        if isinstance(node, ast.Subscript):
            node = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    @staticmethod
    def _self_calls(method: ast.AST) -> set[str]:
        calls: set[str] = set()
        for child in ast.walk(method):
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and isinstance(child.func.value, ast.Name)
                and child.func.value.id in {"self", "cls"}
            ):
                calls.add(child.func.attr)
        return calls

    @staticmethod
    def _is_classmethod_or_static(
        method: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> bool:
        for decorator in method.decorator_list:
            target = (
                decorator.func if isinstance(decorator, ast.Call) else decorator
            )
            if isinstance(target, ast.Name) and target.id in {
                "classmethod",
                "staticmethod",
            }:
                return True
        return False

    @staticmethod
    def _reachable(roots: set[str], edges: dict[str, set[str]]) -> set[str]:
        seen = {name for name in roots if name in edges}
        frontier = list(seen)
        while frontier:
            current = frontier.pop()
            for callee in edges.get(current, ()):
                if callee in edges and callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return seen

    def _owned_mutations(
        self, method: ast.AST, owned: set[str]
    ) -> list[tuple[str, ast.AST]]:
        """Mutations of owned attributes inside one method.

        Counts assignment/augmented-assignment/deletion targeting
        ``self.attr`` (or an item of it) and *any* method call on
        ``self.attr`` — mutating and reading method calls cannot be
        told apart syntactically, and even reads of loop-owned state
        are suspect off the loop (torn mid-decision views).
        """
        found: list[tuple[str, ast.AST]] = []
        for child in ast.walk(method):
            if isinstance(child, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    child.targets
                    if isinstance(child, ast.Assign)
                    else [child.target]
                )
                for target in targets:
                    attribute = self._self_attribute_of(target)
                    if attribute in owned:
                        found.append((attribute, child))
            elif isinstance(child, ast.Delete):
                for target in child.targets:
                    attribute = self._self_attribute_of(target)
                    if attribute in owned:
                        found.append((attribute, child))
            elif isinstance(child, ast.Call) and isinstance(
                child.func, ast.Attribute
            ):
                attribute = self._self_attribute_of(child.func.value)
                if attribute in owned:
                    found.append((attribute, child))
        return found

    # -- WIRE001: encoder/decoder field parity --------------------------------

    def _finalize_wire_parity(self) -> None:
        """Pair wire codecs and cross-check their field inventories.

        Two pairing shapes: module-level ``<entity>_to_wire`` /
        ``<entity>_from_wire`` functions, and ``as_dict`` /
        ``from_dict`` methods of one class.  The encoder inventory is
        every string key of a dict literal in the encoder; the decoder
        inventory is every string subscript plus ``.get()``/``.pop()``
        first argument.  Either side empty means the codec delegates
        (no literal schema to compare) and the pair is skipped.
        """
        if self._module is None:
            return
        functions = {
            statement.name: statement
            for statement in self._module.body
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for name in sorted(functions):
            if not name.endswith(_WIRE_ENCODER_SUFFIX):
                continue
            entity = name[: -len(_WIRE_ENCODER_SUFFIX)]
            decoder = functions.get(f"{entity}{_WIRE_DECODER_SUFFIX}")
            if decoder is not None:
                self._check_codec_pair(
                    functions[name], decoder, f"{entity} wire codec"
                )
        for node in ast.walk(self._module):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                statement.name: statement
                for statement in node.body
                if isinstance(
                    statement, (ast.FunctionDef, ast.AsyncFunctionDef)
                )
            }
            encoder = methods.get("as_dict")
            decoder = methods.get("from_dict")
            if encoder is not None and decoder is not None:
                self._check_codec_pair(
                    encoder, decoder, f"{node.name}.as_dict/from_dict"
                )

    def _check_codec_pair(
        self,
        encoder: ast.FunctionDef | ast.AsyncFunctionDef,
        decoder: ast.FunctionDef | ast.AsyncFunctionDef,
        label: str,
    ) -> None:
        written = self._encoded_fields(encoder)
        read = self._decoded_fields(decoder)
        if not written or not read:
            return
        encoder_only = sorted(written - read)
        decoder_only = sorted(read - written)
        if encoder_only:
            self.emit(
                "WIRE001",
                encoder,
                f"{label}: encoder writes field(s) the decoder never "
                f"reads: {', '.join(encoder_only)} — replay silently "
                "drops them",
            )
        if decoder_only:
            self.emit(
                "WIRE001",
                decoder,
                f"{label}: decoder reads field(s) the encoder never "
                f"writes: {', '.join(decoder_only)} — they decode to "
                "defaults forever",
            )

    @staticmethod
    def _encoded_fields(
        function: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> set[str]:
        fields: set[str] = set()
        for child in ast.walk(function):
            if isinstance(child, ast.Dict):
                for key in child.keys:
                    if isinstance(key, ast.Constant) and isinstance(
                        key.value, str
                    ):
                        fields.add(key.value)
        return fields

    @staticmethod
    def _decoded_fields(
        function: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> set[str]:
        fields: set[str] = set()
        for child in ast.walk(function):
            if isinstance(child, ast.Subscript):
                index = child.slice
                if isinstance(index, ast.Constant) and isinstance(
                    index.value, str
                ):
                    fields.add(index.value)
            elif (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in _DICT_READ_METHODS
                and child.args
            ):
                first = child.args[0]
                if isinstance(first, ast.Constant) and isinstance(
                    first.value, str
                ):
                    fields.add(first.value)
        return fields

    # -- DET003: unordered iteration ---------------------------------------

    def _iterables_of(self, node: ast.AST) -> list[ast.expr]:
        if isinstance(node, (ast.For, ast.AsyncFor, ast.comprehension)):
            return [node.iter]
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            return [generator.iter for generator in node.generators]
        return []

    def _check_set_iteration_parent(self, node: ast.expr) -> None:
        """Emit DET003 when ``node`` (a set expression) is iterated raw."""
        parent = self._parents[-2] if len(self._parents) >= 2 else None
        if parent is None:
            return
        if node in self._iterables_of(parent):
            self.emit(
                "DET003",
                node,
                "iterating a set directly; wrap in sorted(...) so output "
                "order is independent of PYTHONHASHSEED",
            )

    def visit_Set(self, node: ast.Set) -> None:
        self._check_set_iteration_parent(node)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._check_set_iteration_parent(node)
        self.generic_visit(node)

    def _check_keys_iteration(self, iterable: ast.expr) -> None:
        if (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Attribute)
            and iterable.func.attr == "keys"
            and not iterable.args
        ):
            self.emit(
                "DET003",
                iterable,
                "iterating an explicit .keys() view; iterate the mapping "
                "itself (insertion order) or sorted(mapping) for reports",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_keys_iteration(node.iter)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        for generator in node.generators:
            self._check_keys_iteration(generator.iter)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        for generator in node.generators:
            self._check_keys_iteration(generator.iter)
        self.generic_visit(node)

    # -- OBS001: probe emissions need an enabled guard ----------------------

    @staticmethod
    def _is_probe_receiver(value: ast.expr) -> bool:
        """The receiver reads as a probe: ``probe`` / ``self.probe`` /
        ``context.probe`` / ``self._probe``."""
        if isinstance(value, ast.Name):
            return value.id in {"probe", "_probe"}
        if isinstance(value, ast.Attribute):
            return value.attr in {"probe", "_probe"}
        return False

    def _check_probe_call(self, node: ast.Call) -> None:
        function = node.func
        if not (
            isinstance(function, ast.Attribute)
            and function.attr in _PROBE_METHODS
            and self._is_probe_receiver(function.value)
        ):
            return
        # Guarded when an ancestor if/ifexp/while tests `.enabled`, or the
        # enclosing function already read `.enabled` on an earlier line
        # (covers the early-return and `span is not None` follow-up
        # patterns: both start from one explicit enabled check).
        for ancestor in reversed(self._parents[:-1]):
            test = getattr(ancestor, "test", None)
            if test is not None and self._mentions_enabled(test):
                return
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                enabled_lines = self._enabled_lines.get(ancestor, [])
                if any(line <= node.lineno for line in enabled_lines):
                    return
                break
        else:
            # Module level (docs snippets, scripts): out of scope.
            return
        self.emit(
            "OBS001",
            node,
            f"probe.{function.attr}(...) without a probe.enabled guard in "
            "scope; gate it (or hoist an `if probe.enabled:` early return) "
            "to protect the disabled-path overhead budget",
        )

    @staticmethod
    def _mentions_enabled(test: ast.expr) -> bool:
        return any(
            isinstance(child, ast.Attribute) and child.attr == "enabled"
            for child in ast.walk(test)
        )

    def _index_enabled_reads(self, function: ast.AST) -> None:
        lines = [
            child.lineno
            for child in ast.walk(function)
            if isinstance(child, ast.Attribute) and child.attr == "enabled"
        ]
        self._enabled_lines[function] = sorted(lines)

    # -- ERR001 / ERR002: exception hygiene ---------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.emit(
                "ERR001",
                node,
                "bare `except:`; name the exception types (and re-raise "
                "with SimulationError context where applicable)",
            )
        elif self._is_broad(node.type) and not self._reraises(node):
            self.emit(
                "ERR002",
                node,
                "broad except handler swallows the exception; re-raise, "
                "or wrap it in a structured SimulationError",
            )
        self.generic_visit(node)

    @staticmethod
    def _is_broad(exception_type: ast.expr) -> bool:
        names = (
            [exception_type]
            if not isinstance(exception_type, ast.Tuple)
            else list(exception_type.elts)
        )
        for name in names:
            if isinstance(name, ast.Name) and name.id in {
                "Exception",
                "BaseException",
            }:
                return True
        return False

    @staticmethod
    def _reraises(node: ast.ExceptHandler) -> bool:
        return any(isinstance(child, ast.Raise) for child in ast.walk(node))

    # -- API001: mutable default arguments ----------------------------------

    def _is_mutable_value(self, value: ast.expr) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.SetComp, ast.DictComp)):
            return True
        return (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _MUTABLE_CONSTRUCTORS
        )

    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        defaults = list(node.args.defaults) + [
            default for default in node.args.kw_defaults if default is not None
        ]
        for default in defaults:
            if self._is_mutable_value(default):
                self.emit(
                    "API001",
                    default,
                    "mutable default argument is shared across calls; "
                    "default to None and build inside the body",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._index_enabled_reads(node)
        self._sync_def_names.add(node.name)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._index_enabled_reads(node)
        self._async_def_names.add(node.name)
        self.generic_visit(node)

    # -- API002: mutable dataclass defaults ---------------------------------

    @staticmethod
    def _is_dataclass(node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            if isinstance(target, ast.Name) and target.id == "dataclass":
                return True
            if isinstance(target, ast.Attribute) and target.attr == "dataclass":
                return True
        return False

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not self._is_dataclass(node):
            self.generic_visit(node)
            return
        for statement in node.body:
            if not isinstance(statement, ast.AnnAssign) or statement.value is None:
                continue
            value = statement.value
            if self._is_mutable_value(value):
                self.emit(
                    "API002",
                    value,
                    "mutable dataclass field default; use "
                    "field(default_factory=...)",
                )
            elif (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "field"
            ):
                for keyword in value.keywords:
                    if keyword.arg == "default" and self._is_mutable_value(
                        keyword.value
                    ):
                        self.emit(
                            "API002",
                            keyword.value,
                            "field(default=<mutable>) aliases one container "
                            "across instances; use default_factory",
                        )
        self.generic_visit(node)


def lint_source(
    source: str, path: str, rules: dict[str, Rule] | None = None
) -> list[Violation]:
    """Lint one module's source text; ``path`` labels the findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Violation(
                "E999",
                path,
                error.lineno or 1,
                (error.offset or 1) - 1,
                f"syntax error: {error.msg}",
            )
        ]
    checker = _Checker(path, source, rules if rules is not None else RULES)
    checker.visit(tree)
    checker.finalize()
    return sorted(
        checker.violations, key=lambda v: (v.path, v.line, v.column, v.rule_id)
    )


def _label_for(path: Path, root: Path | None) -> str:
    """The POSIX path label findings carry (relative to ``root`` if possible)."""
    if root is not None:
        try:
            return path.relative_to(root).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def lint_file(
    path: Path, root: Path | None = None, rules: dict[str, Rule] | None = None
) -> list[Violation]:
    """Lint one file; findings carry paths relative to ``root``."""
    return lint_source(
        path.read_text(encoding="utf-8"), _label_for(path, root), rules
    )


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    collected: set[Path] = set()
    for path in paths:
        if path.is_dir():
            collected.update(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )
        elif path.suffix == ".py":
            collected.add(path)
    return sorted(collected)


def _resolve_lint_jobs(jobs: int | None) -> int:
    """``None``/``0`` → one worker per CPU; negative is a config error."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ConfigurationError(f"lint jobs must be >= 0, got {jobs}")
    return jobs


def _lint_one_file(arguments: tuple[str, str]) -> list[Violation]:
    """Worker for the ``--jobs`` fan-out (module-level so it pickles)."""
    filename, label = arguments
    return lint_source(Path(filename).read_text(encoding="utf-8"), label)


def lint_paths(
    paths: list[Path],
    root: Path | None = None,
    rules: dict[str, Rule] | None = None,
    jobs: int | None = 1,
) -> list[Violation]:
    """Lint every python file under ``paths``; sorted, deterministic.

    ``jobs`` fans files out over a process pool (``None``/``0`` means
    one worker per CPU).  The fan-out mirrors ``ParallelRunner``'s
    determinism contract: each file is an independent unit and the
    merged report is re-sorted, so the result is byte-identical to a
    serial run regardless of worker count or completion order.  A
    custom ``rules`` mapping forces the serial path — workers always
    lint against the full registry.
    """
    if root is None:
        root = Path.cwd()
    files = iter_python_files(paths)
    workers = _resolve_lint_jobs(jobs)
    violations: list[Violation] = []
    if workers > 1 and len(files) > 1 and rules is None:
        from concurrent.futures import ProcessPoolExecutor

        arguments = [(str(path), _label_for(path, root)) for path in files]
        with ProcessPoolExecutor(
            max_workers=min(workers, len(files))
        ) as pool:
            for result in pool.map(_lint_one_file, arguments):
                violations.extend(result)
    else:
        for path in files:
            violations.extend(lint_file(path, root=root, rules=rules))
    return sorted(
        violations, key=lambda v: (v.path, v.line, v.column, v.rule_id)
    )
