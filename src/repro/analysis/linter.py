"""The comlint engine: AST checks, suppressions, file walking.

Zero dependencies beyond the standard library.  One parse per file feeds
every rule; suppression comments are read straight from the source lines
(``# comlint: disable=DET001`` on the offending line, or
``# comlint: disable-file=DET001`` anywhere for a whole-file waiver).

The checks are deliberately *heuristic* — this is a project linter, not a
type checker.  Each heuristic is documented on its method; false positives
are expected to be rare and are silenced with an inline suppression that
doubles as reviewer-visible documentation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.rules import RULES, Rule

__all__ = ["Violation", "lint_source", "lint_file", "lint_paths", "iter_python_files"]

#: random-module functions that draw from (or reseed) the global stream.
_RANDOM_MODULE_FUNCTIONS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "uniform",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "seed",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "betavariate",
        "gammavariate",
        "triangular",
        "paretovariate",
        "vonmisesvariate",
        "weibullvariate",
        "getrandbits",
        "binomialvariate",
    }
)

#: (module, attribute) pairs that read the wall clock.
_WALL_CLOCK_CALLS = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
    }
)

#: Probe emission methods whose call sites must be enabled-guarded.
_PROBE_METHODS = frozenset({"span", "instant", "count", "observe", "gauge"})

#: Builtin constructors of mutable containers.
_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})

#: The module whose import marks a file as event-sink-aware (OBS002).
_EVENT_SINK_MODULE = "repro.obs.events"

#: Event-sink names whose import from ``repro.obs`` marks the file too.
_EVENT_SINK_NAMES = frozenset(
    {
        "EventLog",
        "EventSink",
        "GatewayEvent",
        "NULL_EVENT_SINK",
        "encode_canonical",
        "canonical_projection",
        "row_digest",
    }
)


@dataclass(frozen=True, slots=True)
class Violation:
    """One lint finding.

    ``path`` is stored POSIX-relative to the lint root so reports and
    baseline fingerprints are machine-independent.
    """

    rule_id: str
    path: str
    line: int
    column: int
    message: str
    source_line: str = ""

    def render(self) -> str:
        """The canonical one-line text form."""
        return (
            f"{self.path}:{self.line}:{self.column + 1}: "
            f"{self.rule_id} {self.message}"
        )


class _Suppressions:
    """Per-file suppression state parsed from comment text."""

    def __init__(self, source: str):
        self.by_line: dict[int, set[str]] = {}
        self.file_wide: set[str] = set()
        for number, text in enumerate(source.splitlines(), start=1):
            marker = text.find("# comlint:")
            if marker < 0:
                continue
            directive = text[marker + len("# comlint:") :].strip()
            if directive.startswith("disable-file="):
                self.file_wide.update(
                    self._parse_ids(directive[len("disable-file=") :])
                )
            elif directive.startswith("disable="):
                self.by_line.setdefault(number, set()).update(
                    self._parse_ids(directive[len("disable=") :])
                )

    @staticmethod
    def _parse_ids(raw: str) -> set[str]:
        ids = {part.strip() for part in raw.split(",") if part.strip()}
        return {"all"} if "all" in ids else ids

    def active(self, rule_id: str, line: int) -> bool:
        """True iff ``rule_id`` is suppressed at ``line``."""
        for pool in (self.file_wide, self.by_line.get(line, ())):
            if "all" in pool or rule_id in pool:
                return True
        return False


class _Checker(ast.NodeVisitor):
    """One pass over a module AST, emitting violations for every rule."""

    def __init__(self, path: str, source: str, rules: dict[str, Rule]):
        self.path = path
        self.lines = source.splitlines()
        self.rules = rules
        self.suppressions = _Suppressions(source)
        self.violations: list[Violation] = []
        #: Stack of (function node, line of first `.enabled` mention or None).
        self._function_stack: list[ast.AST] = []
        #: Per-function lines on which `.enabled` is read (OBS001 heuristic).
        self._enabled_lines: dict[ast.AST, list[int]] = {}
        #: Ancestor chain maintained by generic_visit wrapper.
        self._parents: list[ast.AST] = []
        #: Class bodies currently decorated as dataclasses.
        self._dataclass_depth = 0
        #: OBS002 state: whether an event-sink import was seen, and every
        #: json.dumps/json.dump call site.  Resolved in :meth:`finalize`
        #: because the import may appear *after* the call in source order
        #: (function-local imports are common in this codebase).
        self._imports_event_sink = False
        self._json_dump_calls: list[ast.Call] = []

    # -- plumbing ----------------------------------------------------------

    def emit(self, rule_id: str, node: ast.AST, message: str) -> None:
        rule = self.rules.get(rule_id)
        if rule is None or rule.allows(self.path):
            return
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        if self.suppressions.active(rule_id, line):
            return
        source_line = (
            self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        )
        self.violations.append(
            Violation(rule_id, self.path, line, column, message, source_line)
        )

    def visit(self, node: ast.AST) -> None:
        self._parents.append(node)
        try:
            super().visit(node)
        finally:
            self._parents.pop()

    # -- DET001 / DET002 / DET004: forbidden calls -------------------------

    def visit_Call(self, node: ast.Call) -> None:
        function = node.func
        if isinstance(function, ast.Attribute) and isinstance(
            function.value, ast.Name
        ):
            owner, attribute = function.value.id, function.attr
            if owner == "random" and attribute == "Random":
                self.emit(
                    "DET001",
                    node,
                    "direct random.Random(...) construction; derive the "
                    "stream via repro.utils.rng (derive_rng / SeedSequence)",
                )
            elif owner == "random" and attribute in _RANDOM_MODULE_FUNCTIONS:
                self.emit(
                    "DET001",
                    node,
                    f"module-level random.{attribute}() draws from the "
                    "shared global stream; use a labelled rng from "
                    "repro.utils.rng",
                )
            elif (owner, attribute) in _WALL_CLOCK_CALLS:
                self.emit(
                    "DET002",
                    node,
                    f"wall-clock read {owner}.{attribute}() outside the "
                    "timing allowlist; use repro.utils.timer.Stopwatch or "
                    "the obs wall-clock keys",
                )
            elif owner == "json" and attribute in {"dumps", "dump"}:
                self._json_dump_calls.append(node)
        elif isinstance(function, ast.Name):
            if function.id == "hash" and node.args:
                self.emit(
                    "DET004",
                    node,
                    "builtin hash() is salted per process; use the "
                    "SHA-256 derivation in repro.utils.rng for seeds and "
                    "explicit sort keys for ordering",
                )
            elif function.id in {"set", "frozenset"}:
                self._check_set_iteration_parent(node)
        self._check_probe_call(node)
        self.generic_visit(node)

    # -- OBS002: raw serialization in event-sink-aware modules --------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == _EVENT_SINK_MODULE or alias.name.startswith(
                f"{_EVENT_SINK_MODULE}."
            ):
                self._imports_event_sink = True
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if module == _EVENT_SINK_MODULE:
            self._imports_event_sink = True
        elif module == "repro.obs" and any(
            alias.name in _EVENT_SINK_NAMES for alias in node.names
        ):
            self._imports_event_sink = True
        self.generic_visit(node)

    def finalize(self) -> None:
        """Checks needing whole-module context, run after the AST pass.

        OBS002 pairs two facts that may appear in either source order
        (this codebase imports lazily inside functions): the module
        touches the event-sink layer, and it also calls ``json.dumps`` /
        ``json.dump`` directly.
        """
        if not self._imports_event_sink:
            return
        for call in self._json_dump_calls:
            self.emit(
                "OBS002",
                call,
                "direct json serialization in an event-sink-aware module; "
                "encode via repro.obs.events.encode_canonical (or emit "
                "through the EventLog) so COMEVT1 byte-identity digests "
                "stay comparable",
            )

    # -- DET003: unordered iteration ---------------------------------------

    def _iterables_of(self, node: ast.AST) -> list[ast.expr]:
        if isinstance(node, (ast.For, ast.AsyncFor, ast.comprehension)):
            return [node.iter]
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            return [generator.iter for generator in node.generators]
        return []

    def _check_set_iteration_parent(self, node: ast.expr) -> None:
        """Emit DET003 when ``node`` (a set expression) is iterated raw."""
        parent = self._parents[-2] if len(self._parents) >= 2 else None
        if parent is None:
            return
        if node in self._iterables_of(parent):
            self.emit(
                "DET003",
                node,
                "iterating a set directly; wrap in sorted(...) so output "
                "order is independent of PYTHONHASHSEED",
            )

    def visit_Set(self, node: ast.Set) -> None:
        self._check_set_iteration_parent(node)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._check_set_iteration_parent(node)
        self.generic_visit(node)

    def _check_keys_iteration(self, iterable: ast.expr) -> None:
        if (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Attribute)
            and iterable.func.attr == "keys"
            and not iterable.args
        ):
            self.emit(
                "DET003",
                iterable,
                "iterating an explicit .keys() view; iterate the mapping "
                "itself (insertion order) or sorted(mapping) for reports",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_keys_iteration(node.iter)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        for generator in node.generators:
            self._check_keys_iteration(generator.iter)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        for generator in node.generators:
            self._check_keys_iteration(generator.iter)
        self.generic_visit(node)

    # -- OBS001: probe emissions need an enabled guard ----------------------

    @staticmethod
    def _is_probe_receiver(value: ast.expr) -> bool:
        """The receiver reads as a probe: ``probe`` / ``self.probe`` /
        ``context.probe`` / ``self._probe``."""
        if isinstance(value, ast.Name):
            return value.id in {"probe", "_probe"}
        if isinstance(value, ast.Attribute):
            return value.attr in {"probe", "_probe"}
        return False

    def _check_probe_call(self, node: ast.Call) -> None:
        function = node.func
        if not (
            isinstance(function, ast.Attribute)
            and function.attr in _PROBE_METHODS
            and self._is_probe_receiver(function.value)
        ):
            return
        # Guarded when an ancestor if/ifexp/while tests `.enabled`, or the
        # enclosing function already read `.enabled` on an earlier line
        # (covers the early-return and `span is not None` follow-up
        # patterns: both start from one explicit enabled check).
        for ancestor in reversed(self._parents[:-1]):
            test = getattr(ancestor, "test", None)
            if test is not None and self._mentions_enabled(test):
                return
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                enabled_lines = self._enabled_lines.get(ancestor, [])
                if any(line <= node.lineno for line in enabled_lines):
                    return
                break
        else:
            # Module level (docs snippets, scripts): out of scope.
            return
        self.emit(
            "OBS001",
            node,
            f"probe.{function.attr}(...) without a probe.enabled guard in "
            "scope; gate it (or hoist an `if probe.enabled:` early return) "
            "to protect the disabled-path overhead budget",
        )

    @staticmethod
    def _mentions_enabled(test: ast.expr) -> bool:
        return any(
            isinstance(child, ast.Attribute) and child.attr == "enabled"
            for child in ast.walk(test)
        )

    def _index_enabled_reads(self, function: ast.AST) -> None:
        lines = [
            child.lineno
            for child in ast.walk(function)
            if isinstance(child, ast.Attribute) and child.attr == "enabled"
        ]
        self._enabled_lines[function] = sorted(lines)

    # -- ERR001 / ERR002: exception hygiene ---------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.emit(
                "ERR001",
                node,
                "bare `except:`; name the exception types (and re-raise "
                "with SimulationError context where applicable)",
            )
        elif self._is_broad(node.type) and not self._reraises(node):
            self.emit(
                "ERR002",
                node,
                "broad except handler swallows the exception; re-raise, "
                "or wrap it in a structured SimulationError",
            )
        self.generic_visit(node)

    @staticmethod
    def _is_broad(exception_type: ast.expr) -> bool:
        names = (
            [exception_type]
            if not isinstance(exception_type, ast.Tuple)
            else list(exception_type.elts)
        )
        for name in names:
            if isinstance(name, ast.Name) and name.id in {
                "Exception",
                "BaseException",
            }:
                return True
        return False

    @staticmethod
    def _reraises(node: ast.ExceptHandler) -> bool:
        return any(isinstance(child, ast.Raise) for child in ast.walk(node))

    # -- API001: mutable default arguments ----------------------------------

    def _is_mutable_value(self, value: ast.expr) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.SetComp, ast.DictComp)):
            return True
        return (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _MUTABLE_CONSTRUCTORS
        )

    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        defaults = list(node.args.defaults) + [
            default for default in node.args.kw_defaults if default is not None
        ]
        for default in defaults:
            if self._is_mutable_value(default):
                self.emit(
                    "API001",
                    default,
                    "mutable default argument is shared across calls; "
                    "default to None and build inside the body",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._index_enabled_reads(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._index_enabled_reads(node)
        self.generic_visit(node)

    # -- API002: mutable dataclass defaults ---------------------------------

    @staticmethod
    def _is_dataclass(node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            if isinstance(target, ast.Name) and target.id == "dataclass":
                return True
            if isinstance(target, ast.Attribute) and target.attr == "dataclass":
                return True
        return False

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not self._is_dataclass(node):
            self.generic_visit(node)
            return
        for statement in node.body:
            if not isinstance(statement, ast.AnnAssign) or statement.value is None:
                continue
            value = statement.value
            if self._is_mutable_value(value):
                self.emit(
                    "API002",
                    value,
                    "mutable dataclass field default; use "
                    "field(default_factory=...)",
                )
            elif (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "field"
            ):
                for keyword in value.keywords:
                    if keyword.arg == "default" and self._is_mutable_value(
                        keyword.value
                    ):
                        self.emit(
                            "API002",
                            keyword.value,
                            "field(default=<mutable>) aliases one container "
                            "across instances; use default_factory",
                        )
        self.generic_visit(node)


def lint_source(
    source: str, path: str, rules: dict[str, Rule] | None = None
) -> list[Violation]:
    """Lint one module's source text; ``path`` labels the findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Violation(
                "E999",
                path,
                error.lineno or 1,
                (error.offset or 1) - 1,
                f"syntax error: {error.msg}",
            )
        ]
    checker = _Checker(path, source, rules if rules is not None else RULES)
    checker.visit(tree)
    checker.finalize()
    return sorted(
        checker.violations, key=lambda v: (v.path, v.line, v.column, v.rule_id)
    )


def lint_file(
    path: Path, root: Path | None = None, rules: dict[str, Rule] | None = None
) -> list[Violation]:
    """Lint one file; findings carry paths relative to ``root``."""
    label = path
    if root is not None:
        try:
            label = path.relative_to(root)
        except ValueError:
            label = path
    return lint_source(
        path.read_text(encoding="utf-8"), label.as_posix(), rules
    )


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    collected: set[Path] = set()
    for path in paths:
        if path.is_dir():
            collected.update(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )
        elif path.suffix == ".py":
            collected.add(path)
    return sorted(collected)


def lint_paths(
    paths: list[Path],
    root: Path | None = None,
    rules: dict[str, Rule] | None = None,
) -> list[Violation]:
    """Lint every python file under ``paths``; sorted, deterministic."""
    if root is None:
        root = Path.cwd()
    violations: list[Violation] = []
    for path in iter_python_files(paths):
        violations.extend(lint_file(path, root=root, rules=rules))
    return sorted(
        violations, key=lambda v: (v.path, v.line, v.column, v.rule_id)
    )
