"""The comlint rule catalogue.

Each rule enforces one *project invariant* — a property the test suite can
only spot-check but the whole codebase must uphold (bit-for-bit
determinism, telemetry overhead budgets, structured error context, API
hygiene).  Rules are identified by a short stable id (``DET001``) used in
reports, inline suppressions (``# comlint: disable=DET001``) and baseline
entries.

The catalogue is data; the AST checks themselves live in
:mod:`repro.analysis.linter`.  Adding a rule means registering a
:class:`Rule` here and implementing its visitor hook there — the registry
keeps the CLI's ``--list-rules``, the docs table and the reporters in
sync automatically.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Rule", "RULES", "rule_ids", "get_rule"]


@dataclass(frozen=True, slots=True)
class Rule:
    """One lint rule's identity and documentation.

    Attributes
    ----------
    rule_id:
        Stable short id (``DET001``); never reused once retired.
    name:
        Human-readable slug used in docs.
    summary:
        One-line statement of the invariant.
    rationale:
        Why the project cares — what silently breaks when violated.
    allowlist:
        Path suffixes (POSIX, relative) where the rule does not apply:
        the modules that *implement* the sanctioned mechanism.
    """

    rule_id: str
    name: str
    summary: str
    rationale: str
    allowlist: tuple[str, ...] = ()

    def allows(self, posix_path: str) -> bool:
        """True iff the rule is switched off for this file path.

        Entries ending with ``/`` match any file under a directory of
        that name; other entries match as path suffixes.
        """
        probe = f"/{posix_path}"
        for suffix in self.allowlist:
            if suffix.endswith("/"):
                if f"/{suffix}" in probe:
                    return True
            elif probe.endswith(f"/{suffix}"):
                return True
        return False


def _rule(
    rule_id: str,
    name: str,
    summary: str,
    rationale: str,
    allowlist: tuple[str, ...] = (),
) -> Rule:
    return Rule(rule_id, name, summary, rationale, allowlist)


#: The registry, ordered for reports and ``--list-rules``.
RULES: dict[str, Rule] = {
    rule.rule_id: rule
    for rule in (
        _rule(
            "DET001",
            "direct-random",
            "No direct random.Random(...) construction or module-level "
            "random.* draws outside utils/rng.py.",
            "Every stochastic draw must flow through the label-derived "
            "streams of repro.utils.rng so a run is a pure function of "
            "(scenario, seed); a stray random.Random or random.random() "
            "silently couples unrelated components' streams and breaks "
            "bit-for-bit reproducibility.",
            allowlist=("utils/rng.py",),
        ),
        _rule(
            "DET002",
            "wall-clock",
            "No time.time()/time.perf_counter()/time.monotonic()/"
            "datetime.now() in deterministic result paths outside "
            "utils/timer.py, obs/ and service/clock.py.",
            "Wall-clock reads belong in the sanctioned Stopwatch / tracer "
            "wall-clock keys / service clock; anywhere else they leak "
            "nondeterminism into reported results and make byte-identical "
            "reruns impossible.",
            allowlist=("utils/timer.py", "obs/", "service/clock.py"),
        ),
        _rule(
            "DET003",
            "unordered-iteration",
            "Iteration over a set (or an explicit dict.keys() call) must "
            "go through sorted(...) before feeding ordered or reported "
            "output.",
            "Set iteration order depends on PYTHONHASHSEED; a bare "
            "`for x in {...}` (or `in set(...)` / `in d.keys()`) that "
            "builds a list, report or event order reorders output between "
            "interpreter invocations.",
        ),
        _rule(
            "DET004",
            "builtin-hash",
            "No builtin hash() for seeds, stream labels or ordering keys.",
            "hash() of str/bytes is salted per process (PYTHONHASHSEED); "
            "seed derivation must use the SHA-256 scheme in utils/rng.py, "
            "which is stable across processes and Python versions.",
            allowlist=("utils/rng.py",),
        ),
        _rule(
            "DET005",
            "numpy-random",
            "No numpy.random use (np.random.* access, from-imports of "
            "numpy.random) outside the vectorized payment kernel seam.",
            "The array backend's only sanctioned randomness is the "
            "per-call PCG64 stream constructed inside core/payment_kernel"
            ".py, seeded from the same label-derived SHA-256 scheme as "
            "the scalar path (docs/PERFORMANCE.md#the-array-backend); a "
            "stray numpy.random draw anywhere else runs on a stream no "
            "replay or byte-identity check tracks, so numpy-on and "
            "numpy-off runs silently diverge.",
            allowlist=("core/payment_kernel.py",),
        ),
        _rule(
            "OBS001",
            "unguarded-probe",
            "Probe emissions (span/instant/count/observe/gauge) in library "
            "code must sit behind a probe.enabled guard.",
            "The telemetry layer's disabled path is budgeted at <= 5% of "
            "mean decision latency (benchmarks/bench_telemetry_overhead"
            ".py); an unguarded emission pays label-dict construction on "
            "every call even when telemetry is off.",
            allowlist=("obs/",),
        ),
        _rule(
            "OBS002",
            "raw-event-serialization",
            "Modules that import the event-sink layer (repro.obs.events) "
            "must not call json.dumps/json.dump directly; encode through "
            "encode_canonical or emit via the EventLog.",
            "COMEVT1 byte-identity (replay verification, drain digests, "
            "soak stream comparison) hinges on one canonical encoder — "
            "sorted keys, compact separators.  An ad-hoc json.dumps next "
            "to event-sink code produces a second, near-identical encoding "
            "whose digests silently diverge from the recorded stream.",
            allowlist=(
                # The canonical encoder itself.
                "obs/events.py",
                # Presentation layers: HTTP/SSE bodies and CLI reports are
                # operator output, never fed back into identity checks.
                "service/dashboard.py",
                "cli.py",
            ),
        ),
        _rule(
            "ASY001",
            "blocking-call-in-async",
            "No blocking calls (time.sleep, builtin open, file "
            "read/write helpers, os.fdatasync/fsync, subprocess.*, "
            "socket.create_connection) inside async functions outside "
            "the sanctioned seams (the journal flush seam, the service "
            "clock).",
            "The gateway's decision loop serializes every matching "
            "decision; one blocking call inside an async function stalls "
            "every queued decision and every connected client for its "
            "full duration.  Blocking durability work belongs behind the "
            "journal's flush seam (service/journal.py) and paced sleeps "
            "behind the service clock (service/clock.py), where the "
            "offloading policy is implemented once.",
            allowlist=("service/journal.py", "service/clock.py"),
        ),
        _rule(
            "ASY002",
            "unawaited-coroutine",
            "A call to a coroutine function must be awaited or handed "
            "to asyncio.create_task/gather, never discarded as a bare "
            "statement.",
            "Calling `async def f` builds a coroutine object; as a bare "
            "expression statement the body never runs and the work is "
            "silently dropped (CPython warns only at GC time, long after "
            "the decision that depended on it).",
        ),
        _rule(
            "ASY003",
            "orphaned-task",
            "asyncio.create_task(...) / ensure_future(...) results must "
            "be retained (assigned, stored, passed on) or given a "
            "done-callback.",
            "The event loop holds tasks weakly: a task whose only "
            "reference is the create_task return value can be garbage-"
            "collected mid-flight, and its exceptions vanish without a "
            "traceback — silent task loss.  Keep the handle (the gateway "
            "stores its loop task on self) or attach a done-callback "
            "that retrieves the outcome.",
        ),
        _rule(
            "ASY004",
            "loop-owned-mutation",
            "State marked `# comlint: loop-owned` may only be mutated "
            "by the decision loop's call graph (methods reached from "
            "_decision_loop / `# comlint: loop-entry` methods, or setup "
            "code reached from __init__).",
            "The gateway is serialized-fail-stop by construction: the "
            "session, journal buffer and event ring are mutated only "
            "between decisions, on the decision loop's task.  A mutation "
            "from any other method runs on a caller task and can "
            "interleave mid-decision; deliberate cross-task touches must "
            "be suppressed inline (and wrapped in an OwnershipGuard "
            "handoff at runtime) so every one is reviewer-visible.",
        ),
        _rule(
            "WIRE001",
            "wire-schema-parity",
            "Paired wire codecs (<entity>_to_wire / <entity>_from_wire "
            "functions, as_dict / from_dict methods of one class) must "
            "read and write the same field inventory.",
            "The COMWAL1 / COMSNAP1 / COMEVT1 formats round-trip "
            "entities through dict codecs; a field added to an encoder "
            "but not its decoder silently drops data on replay (or vice "
            "versa: a decoder key no encoder produces reads defaults "
            "forever), and the divergence only surfaces when a recovery "
            "or byte-identity check fails far from the edit.",
        ),
        _rule(
            "ERR001",
            "bare-except",
            "No bare `except:` clauses.",
            "A bare except swallows KeyboardInterrupt/SystemExit and hides "
            "the structured SimulationError context the simulator relies "
            "on for diagnosable failures.",
        ),
        _rule(
            "ERR002",
            "swallowed-exception",
            "`except Exception` / `except BaseException` handlers must "
            "re-raise (plain or wrapped in a structured error).",
            "Broad handlers that absorb without re-raising convert "
            "mid-stream inconsistencies into silently-wrong results; "
            "failure paths must surface SimulationError context instead.",
        ),
        _rule(
            "API001",
            "mutable-default-arg",
            "No mutable default argument values (list/dict/set literals "
            "or constructor calls).",
            "Mutable defaults are shared across calls; use None plus an "
            "in-body default, or dataclasses.field(default_factory=...).",
        ),
        _rule(
            "API002",
            "mutable-dataclass-default",
            "No mutable dataclass field defaults; use "
            "field(default_factory=...).",
            "A shared mutable default aliases state across instances. "
            "CPython rejects bare list/dict/set defaults but not "
            "field(default=[...]) or other mutable containers.",
        ),
    )
}


def rule_ids() -> list[str]:
    """Every registered rule id, in catalogue order."""
    return list(RULES)


def get_rule(rule_id: str) -> Rule:
    """Look up one rule; raises ``KeyError`` with the known ids."""
    try:
        return RULES[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known rules: {', '.join(RULES)}"
        ) from None
