"""Project-invariant enforcement: the ``comlint`` static analyzer and the
runtime matching-constraint sanitizer.

Two complementary layers keep the repo's load-bearing invariants intact
as the codebase grows:

* **Static** — :func:`lint_paths` walks python sources with an AST
  checker enforcing the rule catalogue in :mod:`repro.analysis.rules`
  (determinism, telemetry-overhead, error-hygiene and API rules), with
  inline ``# comlint: disable=RULE`` suppressions and a ratcheting
  :class:`Baseline`.  Exposed on the CLI as ``com-repro lint``.
* **Dynamic** — :class:`ConstraintSanitizer` validates every assignment
  decision of a live simulation against the four Definition-2.6
  constraints, waiting-list consistency, and ledger/revenue
  conservation; enabled via ``SimulatorConfig(sanitize=True)`` or the
  ``COM_REPRO_SANITIZE`` environment variable.  Its concurrency
  sibling, :class:`ConcurrencyMonitor`, guards decision-loop-owned
  structures against cross-task mutation (:class:`OwnershipGuard`) and
  times loop callbacks for stalls; enabled via
  ``SimulatorConfig(sanitize_concurrency=True)``, ``serve
  --sanitize-concurrency`` or ``COM_REPRO_SANITIZE_CONCURRENCY``.

See ``docs/STATIC_ANALYSIS.md`` for the full rule catalogue and usage.
"""

from repro.analysis.baseline import Baseline, partition_violations
from repro.analysis.concurrency import (
    CONCURRENCY_ENV_VAR,
    ConcurrencyMonitor,
    ConcurrencyViolation,
    OwnershipGuard,
    concurrency_from_env,
)
from repro.analysis.linter import (
    Violation,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.reporting import (
    render_json,
    render_rule_catalogue,
    render_text,
)
from repro.analysis.rules import RULES, Rule, get_rule, rule_ids
from repro.analysis.sanitizer import (
    SANITIZE_ENV_VAR,
    ConstraintSanitizer,
    SanitizerViolation,
    sanitize_from_env,
)

__all__ = [
    "Baseline",
    "CONCURRENCY_ENV_VAR",
    "ConcurrencyMonitor",
    "ConcurrencyViolation",
    "ConstraintSanitizer",
    "OwnershipGuard",
    "RULES",
    "Rule",
    "SANITIZE_ENV_VAR",
    "SanitizerViolation",
    "Violation",
    "concurrency_from_env",
    "get_rule",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "partition_violations",
    "render_json",
    "render_rule_catalogue",
    "render_text",
    "rule_ids",
    "sanitize_from_env",
]
