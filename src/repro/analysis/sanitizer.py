"""Runtime matching-constraint sanitizer.

The static linter keeps the *code* honest; this module keeps a *running
simulation* honest.  When enabled (``SimulatorConfig(sanitize=True)`` or
the ``COM_REPRO_SANITIZE`` environment variable), every assignment
decision flowing through :class:`repro.core.simulator.Simulator` and the
shared offer loop is validated **before** it mutates world state:

* the four COM constraints of Definition 2.6 — ``time``, ``one-by-one``,
  ``invariable``, ``range``;
* ``waiting-list`` consistency — the chosen worker must still be present
  and claimable in the cooperation exchange, on the platform the worker
  object claims as home;
* ``payment`` bounds (Definitions 2.3-2.5: outer payments in
  ``(0, v_r]``, inner assignments pay nothing) and outer ``sharing``
  eligibility;
* per-platform ``conservation`` — the lender-income ledger must equal
  the payments actually committed, and each ledger's revenue must match
  its own Definition-2.5 decomposition.

A violation raises :class:`repro.errors.SanitizerViolation` naming the
constraint, request, worker and sim time, so a broken algorithm fails
loudly at the first bad decision instead of skewing results silently.

The sanitizer is deliberately allocation-light: per-decision checks are
O(candidates) dictionary work, and the disabled path in the simulator is
a single ``is None`` test (see ``benchmarks/bench_telemetry_overhead.py``
for the shared disabled-path budget).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from repro.errors import SanitizerViolation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.entities import Request, Worker
    from repro.core.exchange import CooperationExchange
    from repro.core.matching import MatchingLedger

__all__ = [
    "ConstraintSanitizer",
    "SanitizerViolation",
    "SANITIZE_ENV_VAR",
    "sanitize_from_env",
]

#: Environment switch: any of ``1/true/yes/on`` (case-insensitive)
#: force-enables the sanitizer for every simulator run in the process.
SANITIZE_ENV_VAR = "COM_REPRO_SANITIZE"

_TRUTHY = frozenset({"1", "true", "yes", "on"})

_EPSILON = 1e-9


def sanitize_from_env(environ: dict[str, str] | None = None) -> bool:
    """True iff :data:`SANITIZE_ENV_VAR` requests sanitizing."""
    source = os.environ if environ is None else environ
    return source.get(SANITIZE_ENV_VAR, "").strip().lower() in _TRUTHY


class ConstraintSanitizer:
    """Validates every assignment decision against the COM invariants.

    One instance guards one simulation run; the simulator feeds it worker
    arrivals and decisions, and consults it immediately *before* claiming
    a worker so a violation surfaces with the world state untouched.
    """

    def __init__(self) -> None:
        #: worker_id -> Worker exactly as announced to the exchange.
        self._arrived: dict[str, "Worker"] = {}
        #: worker_id -> request_id of the assignment that consumed them.
        self._assigned_workers: dict[str, str] = {}
        #: request_id -> "served" | "rejected" (the invariable constraint).
        self._decided_requests: dict[str, str] = {}
        #: lender platform -> outer payments the sanitizer saw committed.
        self._expected_lender_income: dict[str, float] = {}
        #: Number of individual constraint checks performed (observability).
        self.checks = 0

    # -- event feed ---------------------------------------------------------

    def observe_worker(self, worker: "Worker") -> None:
        """Record a worker (or reentry clone) joining the exchange."""
        self._arrived[worker.worker_id] = worker

    def observe_rejection(self, request: "Request", time: float) -> None:
        """Record a rejection; re-deciding a settled request is a
        violation of the invariable constraint."""
        self.checks += 1
        previous = self._decided_requests.get(request.request_id)
        if previous is not None:
            raise SanitizerViolation(
                "invariable",
                f"request was already {previous} and may not be revised",
                time=time,
                platform_id=request.platform_id,
                request_id=request.request_id,
            )
        self._decided_requests[request.request_id] = "rejected"

    # -- offer-time checks --------------------------------------------------

    def check_offer(
        self,
        request: "Request",
        worker: "Worker",
        payment: float,
        platform_id: str,
    ) -> None:
        """Validate one live offer (Algorithm 1 lines 15-26).

        Offers must only reach *eligible* outer workers: shareable, in
        range, already arrived, and priced inside ``(0, v_r]``.
        """
        self.checks += 1
        time = request.arrival_time
        if worker.platform_id == platform_id:
            raise SanitizerViolation(
                "sharing",
                "offer extended to an inner worker through the outer "
                "offer loop",
                time=time,
                platform_id=platform_id,
                request_id=request.request_id,
                worker_id=worker.worker_id,
            )
        if not worker.shareable:
            raise SanitizerViolation(
                "sharing",
                "offer extended to a non-shareable worker",
                time=time,
                platform_id=platform_id,
                request_id=request.request_id,
                worker_id=worker.worker_id,
            )
        if not payment > 0.0 or payment > request.value + _EPSILON:
            raise SanitizerViolation(
                "payment",
                f"offer payment {payment} outside (0, v_r={request.value}]",
                time=time,
                platform_id=platform_id,
                request_id=request.request_id,
                worker_id=worker.worker_id,
            )
        self._check_time(request, worker, platform_id)
        self._check_range(request, worker, platform_id)

    # -- decision-time checks -----------------------------------------------

    def check_assignment(
        self,
        request: "Request",
        worker: "Worker",
        outer: bool,
        payment: float,
        exchange: "CooperationExchange | None" = None,
    ) -> None:
        """Validate one serve decision; called before the worker is
        claimed so the exchange still holds the pre-decision state.

        Validation only — :meth:`commit_assignment` records the decision
        once the claim actually succeeds (under fault injection a valid
        decision may still collapse into a rejection at claim time).
        """
        self.checks += 1
        time = request.arrival_time

        # Invariable: a settled request is never revisited.
        previous = self._decided_requests.get(request.request_id)
        if previous is not None:
            raise SanitizerViolation(
                "invariable",
                f"request was already {previous} and may not be revised",
                time=time,
                platform_id=request.platform_id,
                request_id=request.request_id,
                worker_id=worker.worker_id,
            )

        # 1-by-1: each worker serves at most one request.
        consumed_by = self._assigned_workers.get(worker.worker_id)
        if consumed_by is not None:
            raise SanitizerViolation(
                "one-by-one",
                f"worker already serves request {consumed_by}",
                time=time,
                platform_id=request.platform_id,
                request_id=request.request_id,
                worker_id=worker.worker_id,
            )

        self._check_time(request, worker, request.platform_id)
        self._check_range(request, worker, request.platform_id)

        # Waiting-list consistency: the decision must name a worker the
        # exchange still exposes, homed where the worker object says.
        registered = self._arrived.get(worker.worker_id)
        if registered is None:
            raise SanitizerViolation(
                "waiting-list",
                "worker never arrived on any waiting list",
                time=time,
                platform_id=request.platform_id,
                request_id=request.request_id,
                worker_id=worker.worker_id,
            )
        if exchange is not None:
            if not exchange.is_available(worker.worker_id):
                raise SanitizerViolation(
                    "waiting-list",
                    "worker is no longer available in the exchange",
                    time=time,
                    platform_id=request.platform_id,
                    request_id=request.request_id,
                    worker_id=worker.worker_id,
                )
            home = exchange.home_of(worker.worker_id)
            if home is not None and home != worker.platform_id:
                raise SanitizerViolation(
                    "waiting-list",
                    f"worker homed on {home} but decision says "
                    f"{worker.platform_id}",
                    time=time,
                    platform_id=request.platform_id,
                    request_id=request.request_id,
                    worker_id=worker.worker_id,
                )

        # Inner/outer sharing and payment bounds (Definitions 2.3-2.5).
        is_outer_pair = worker.platform_id != request.platform_id
        if outer != is_outer_pair:
            raise SanitizerViolation(
                "sharing",
                f"decision kind says outer={outer} but worker home "
                f"{worker.platform_id} vs request platform "
                f"{request.platform_id} implies outer={is_outer_pair}",
                time=time,
                platform_id=request.platform_id,
                request_id=request.request_id,
                worker_id=worker.worker_id,
            )
        if outer:
            if not worker.shareable:
                raise SanitizerViolation(
                    "sharing",
                    "non-shareable worker used for an outer assignment",
                    time=time,
                    platform_id=request.platform_id,
                    request_id=request.request_id,
                    worker_id=worker.worker_id,
                )
            if not payment > 0.0 or payment > request.value + _EPSILON:
                raise SanitizerViolation(
                    "payment",
                    f"outer payment {payment} outside "
                    f"(0, v_r={request.value}]",
                    time=time,
                    platform_id=request.platform_id,
                    request_id=request.request_id,
                    worker_id=worker.worker_id,
                )
        elif payment != 0.0:
            raise SanitizerViolation(
                "payment",
                f"inner assignment carries an outer payment of {payment}",
                time=time,
                platform_id=request.platform_id,
                request_id=request.request_id,
                worker_id=worker.worker_id,
            )

    def commit_assignment(
        self,
        request: "Request",
        worker: "Worker",
        outer: bool,
        payment: float,
    ) -> None:
        """Record a successfully-claimed assignment (after
        :meth:`check_assignment` approved it and the exchange committed)."""
        self._decided_requests[request.request_id] = "served"
        self._assigned_workers[worker.worker_id] = request.request_id
        if outer:
            self._expected_lender_income[worker.platform_id] = (
                self._expected_lender_income.get(worker.platform_id, 0.0)
                + payment
            )

    def _check_time(
        self, request: "Request", worker: "Worker", platform_id: str
    ) -> None:
        # Time constraint: the worker must predate the request — both by
        # the worker object's own claim and by the arrival the exchange
        # actually saw (catching fabricated clones either way).
        self.checks += 1
        registered = self._arrived.get(worker.worker_id)
        arrival = worker.arrival_time
        if registered is not None:
            arrival = max(arrival, registered.arrival_time)
        if arrival > request.arrival_time + _EPSILON:
            raise SanitizerViolation(
                "time",
                f"worker arrived at t={arrival} after the request "
                f"(t={request.arrival_time})",
                time=request.arrival_time,
                platform_id=platform_id,
                request_id=request.request_id,
                worker_id=worker.worker_id,
            )

    def _check_range(
        self, request: "Request", worker: "Worker", platform_id: str
    ) -> None:
        self.checks += 1
        distance = worker.location.distance_to(request.location)
        if distance > worker.service_radius + _EPSILON:
            raise SanitizerViolation(
                "range",
                f"request at distance {distance:.6f} km exceeds the "
                f"worker's service radius {worker.service_radius} km",
                time=request.arrival_time,
                platform_id=platform_id,
                request_id=request.request_id,
                worker_id=worker.worker_id,
            )

    # -- ledger conservation -------------------------------------------------

    def check_lender_conservation(
        self, ledgers: dict[str, "MatchingLedger"], time: float
    ) -> None:
        """O(platforms) incremental check: committed outer payments must
        equal the lender income the ledgers accumulated."""
        self.checks += 1
        for platform_id, ledger in ledgers.items():
            expected = self._expected_lender_income.get(platform_id, 0.0)
            actual = ledger.total_lender_income
            if abs(actual - expected) > _EPSILON * max(1.0, abs(expected)):
                raise SanitizerViolation(
                    "conservation",
                    f"lender income {actual} diverged from committed outer "
                    f"payments {expected}",
                    time=time,
                    platform_id=platform_id,
                )

    def finalize(self, ledgers: dict[str, "MatchingLedger"], time: float) -> None:
        """End-of-run audit: full Definition-2.5 revenue decomposition per
        platform plus a final conservation pass."""
        self.check_lender_conservation(ledgers, time)
        for platform_id, ledger in ledgers.items():
            self.checks += 1
            recomputed = sum(
                record.platform_revenue for record in ledger.records
            )
            if abs(ledger.revenue - recomputed) > _EPSILON * max(
                1.0, abs(recomputed)
            ):
                raise SanitizerViolation(
                    "conservation",
                    f"ledger revenue {ledger.revenue} != recomputed "
                    f"Definition-2.5 decomposition {recomputed}",
                    time=time,
                    platform_id=platform_id,
                )
