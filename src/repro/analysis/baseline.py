"""Baseline files: ratcheting legacy lint debt to zero.

A baseline records *accepted* pre-existing violations so ``com-repro
lint`` can fail only on **new** findings while debt is paid down.  Entries
are fingerprinted as ``(path, rule_id, normalized source line)`` — robust
to unrelated edits shifting line numbers, strict enough that touching an
offending line re-surfaces it.

The shipped baseline (``comlint.baseline.json``) is **empty** and is
expected to stay that way: new violations are fixed or carry an inline
``# comlint: disable=RULE`` with a justification.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.linter import Violation

__all__ = ["Baseline", "partition_violations"]

_FORMAT_VERSION = 1


def _fingerprint(violation: Violation) -> str:
    normalized = " ".join(violation.source_line.split())
    return f"{violation.path}|{violation.rule_id}|{normalized}"


@dataclass
class Baseline:
    """An accepted-violation set, loadable from / dumpable to JSON."""

    entries: set[str] = field(default_factory=set)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        version = payload.get("version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} in {path}"
            )
        return cls(entries=set(payload.get("entries", [])))

    def save(self, path: Path) -> None:
        """Write the baseline with stable ordering (diff-friendly)."""
        payload = {
            "version": _FORMAT_VERSION,
            "entries": sorted(self.entries),
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def contains(self, violation: Violation) -> bool:
        """True iff this violation is accepted legacy debt."""
        return _fingerprint(violation) in self.entries

    @classmethod
    def from_violations(cls, violations: list[Violation]) -> "Baseline":
        """A baseline accepting exactly the given findings."""
        return cls(entries={_fingerprint(v) for v in violations})

    def __len__(self) -> int:
        return len(self.entries)


def partition_violations(
    violations: list[Violation], baseline: Baseline
) -> tuple[list[Violation], list[Violation]]:
    """Split findings into ``(new, baselined)``."""
    new: list[Violation] = []
    accepted: list[Violation] = []
    for violation in violations:
        (accepted if baseline.contains(violation) else new).append(violation)
    return new, accepted
