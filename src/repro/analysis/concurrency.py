"""Runtime concurrency sanitizer: ownership guards and a stall detector.

The static ASY rules (:mod:`repro.analysis.rules`) fence off blocking
calls and orphaned coroutines at review time; this module catches what
statics cannot see — a *live* cross-task mutation of decision-loop state,
and a decision callback that stalls the event loop long enough to hurt
tail latency.  It is the concurrency analogue of
:class:`~repro.analysis.sanitizer.ConstraintSanitizer` and follows the
same seam discipline:

* **off by default** — the gateway and session hold ``None`` and every
  call site costs one ``is None`` test (the probe-seam budget, asserted
  by ``benchmarks/bench_service.py``'s disabled-path gate);
* **enabled** via ``SimulatorConfig(sanitize_concurrency=True)``,
  ``com-repro serve --sanitize-concurrency``, or the
  ``COM_REPRO_SANITIZE_CONCURRENCY`` environment variable — and forced
  on unconditionally by the soak harness;
* **fail loudly** — a cross-task mutation raises
  :class:`~repro.errors.ConcurrencyViolation` naming the structure, the
  owning task and the intruding task, exactly where the race happened.

Ownership model
---------------

Each guarded structure (the simulation session, the journal's append
buffer, the event ring) gets one :class:`OwnershipGuard`.  The first
mutation performed *inside a running asyncio task* claims ownership for
that task — in the gateway that is always the decision loop, because
every guarded mutation flows through ``_decision_loop``.  Later
mutations from any other task raise; mutations outside any event loop
(construction, recovery replay, the batch :meth:`~repro.core.simulator.
Simulator.run` path) are setup work that precedes ownership and is
always allowed.  A deliberate foreign mutation — e.g. a caller task
answering from the outcome cache — is wrapped in :meth:`OwnershipGuard.
handoff`, which documents the transfer in code the same way a
``# comlint: disable=ASY004`` comment documents it to the linter.

Stall detection
---------------

``asyncio``'s own slow-callback warning only works in debug mode and
logs instead of reporting.  :meth:`ConcurrencyMonitor.measure_stall`
wraps one decision callback in a :class:`~repro.utils.timer.Stopwatch`
and records a stall whenever the callback held the loop longer than
``stall_threshold`` seconds — counted in :attr:`ConcurrencyMonitor.
stalls` and mirrored to the ``service_loop_stalls_total`` counter of an
attached :class:`~repro.obs.metrics.MetricsRegistry`.  Stalls are
*observations*, not violations: wall time is nondeterministic, so they
report through the metrics channel instead of raising (a raise would
make byte-identity runs flaky on a loaded machine).

Guards hold references to live :class:`asyncio.Task` objects, which do
not survive pickling; the monitor therefore drops all ownership state in
``__getstate__`` so a :class:`~repro.core.simulator.SimulationSession`
carrying one still snapshots into ``COMSNAP1`` — the recovered process's
decision loop simply re-claims ownership on its first mutation.
"""

from __future__ import annotations

import asyncio
import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from repro.errors import ConcurrencyViolation
from repro.utils.timer import Stopwatch

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "CONCURRENCY_ENV_VAR",
    "ConcurrencyMonitor",
    "ConcurrencyViolation",
    "OwnershipGuard",
    "concurrency_from_env",
]

#: Environment switch: any of ``1/true/yes/on`` (case-insensitive)
#: force-enables the concurrency sanitizer for the whole process.
CONCURRENCY_ENV_VAR = "COM_REPRO_SANITIZE_CONCURRENCY"

_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: Default slow-callback threshold (seconds): generous enough that a
#: healthy decision (micro-to-low-milliseconds) never trips it, tight
#: enough that an accidental fsync or file encode on the loop does.
DEFAULT_STALL_THRESHOLD = 0.25


def concurrency_from_env(environ: dict[str, str] | None = None) -> bool:
    """True iff :data:`CONCURRENCY_ENV_VAR` requests the sanitizer."""
    source = os.environ if environ is None else environ
    return source.get(CONCURRENCY_ENV_VAR, "").strip().lower() in _TRUTHY


def _current_task_or_none() -> asyncio.Task | None:
    """The running task, or ``None`` outside any event loop."""
    try:
        return asyncio.current_task()
    except RuntimeError:  # no running event loop
        return None


def _task_label(task: asyncio.Task | None) -> str:
    if task is None:
        return "<no-task>"
    try:
        return task.get_name()
    except AttributeError:  # pragma: no cover - pre-3.8 compat shim
        return repr(task)


class OwnershipGuard:
    """Records which asyncio task owns one structure; rejects intruders.

    The guard is claimed by the first mutation performed inside a
    running task (:meth:`check`) or explicitly via :meth:`bind`.
    Mutations from other tasks raise :class:`~repro.errors.
    ConcurrencyViolation` unless performed inside :meth:`handoff`,
    which marks a deliberate, reviewed transfer.
    """

    __slots__ = ("structure", "_owner", "_handoffs", "violations")

    def __init__(self, structure: str):
        self.structure = structure
        self._owner: asyncio.Task | None = None
        self._handoffs = 0
        #: Violations raised by this guard (diagnostics; each one also
        #: raised immediately — the count survives for reporting).
        self.violations = 0

    @property
    def owner(self) -> str | None:
        """The owning task's name (``None`` while unclaimed)."""
        return _task_label(self._owner) if self._owner is not None else None

    def bind(self) -> None:
        """Claim (or re-claim) ownership for the current task."""
        self._owner = _current_task_or_none()

    def check(self) -> None:
        """Validate one mutation of the guarded structure.

        Outside any event loop — construction, recovery replay, the
        batch simulator — there is no task to race with and the
        mutation is allowed without claiming ownership.
        """
        task = _current_task_or_none()
        if task is None or self._handoffs > 0:
            return
        if self._owner is None or self._owner.done():
            # First task-context mutation claims the structure; a dead
            # owner (crashed decision loop) is re-claimable by its
            # recovered successor.
            self._owner = task
            return
        if task is not self._owner:
            self.violations += 1
            raise ConcurrencyViolation(
                self.structure,
                "mutated from a task that does not own it "
                "(wrap a deliberate transfer in guard.handoff())",
                owner=_task_label(self._owner),
                intruder=_task_label(task),
            )

    @contextmanager
    def handoff(self) -> Iterator[None]:
        """Allow mutations from a foreign task for the enclosed block.

        Ownership stays with the original task: a handoff marks one
        reviewed cross-task touch, not a transfer of the structure.
        """
        self._handoffs += 1
        try:
            yield
        finally:
            self._handoffs -= 1


class ConcurrencyMonitor:
    """One process-side concurrency sanitizer: guards plus stall timing.

    Instantiated only when the sanitizer is enabled — disabled call
    sites hold ``None`` and pay one ``is None`` test, mirroring the
    :class:`~repro.analysis.sanitizer.ConstraintSanitizer` seam.
    """

    def __init__(
        self,
        stall_threshold: float = DEFAULT_STALL_THRESHOLD,
        registry: "MetricsRegistry | None" = None,
    ):
        self.stall_threshold = stall_threshold
        self._registry = registry
        self._guards: dict[str, OwnershipGuard] = {}
        #: Slow callbacks observed (label, seconds), in occurrence order.
        self.stalls: list[tuple[str, float]] = []

    # -- ownership -----------------------------------------------------------

    def guard(self, structure: str) -> OwnershipGuard:
        """The (lazily created) guard for one named structure."""
        guard = self._guards.get(structure)
        if guard is None:
            guard = OwnershipGuard(structure)
            self._guards[structure] = guard
        return guard

    def touch(self, structure: str) -> None:
        """Validate one mutation of ``structure`` by the current task."""
        self.guard(structure).check()

    @property
    def violations(self) -> int:
        """Total ownership violations across every guard."""
        return sum(
            self._guards[name].violations for name in sorted(self._guards)
        )

    def attach_registry(self, registry: "MetricsRegistry") -> None:
        """Mirror stall counts into a live metrics registry."""
        self._registry = registry

    # -- stall detection -----------------------------------------------------

    @contextmanager
    def measure_stall(self, label: str) -> Iterator[None]:
        """Time one loop callback; record a stall past the threshold.

        Stalls report through the metrics channel (and :attr:`stalls`)
        rather than raising: wall time is an observation, so a loaded
        CI machine must not be able to fail a byte-identity run.
        """
        watch = Stopwatch().start()
        try:
            yield
        finally:
            elapsed = watch.stop()
            if self.stall_threshold > 0 and elapsed >= self.stall_threshold:
                self.stalls.append((label, elapsed))
                if self._registry is not None:
                    self._registry.counter(
                        "service_loop_stalls_total"
                    ).inc(callback=label)

    def stats(self) -> dict:
        """JSON-ready health row (surfaced by the gateway ``stats`` verb)."""
        return {
            "guards": {
                name: self._guards[name].owner
                for name in sorted(self._guards)
            },
            "violations": self.violations,
            "stall_threshold": self.stall_threshold,
            "stalls": len(self.stalls),
        }

    # -- pickling ------------------------------------------------------------
    # Sessions carrying a monitor are pickled into COMSNAP1 checkpoints;
    # task references die with the process, so ownership state is
    # dropped and re-claimed by the recovered decision loop.

    def __getstate__(self) -> dict:
        return {"stall_threshold": self.stall_threshold}

    def __setstate__(self, state: dict) -> None:
        self.stall_threshold = state["stall_threshold"]
        self._registry = None
        self._guards = {}
        self.stalls = []
