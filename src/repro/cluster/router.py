"""Spatial routing across a cluster of shard gateways.

The :class:`ClusterRouter` is the cluster's single point of entry: it
routes each arrival to the shard gateway owning the arrival's grid cell
(per the :class:`~repro.cluster.plan.ShardPlan`), forwards rejected
requests to neighbouring shards whose territory intersects the request's
cooperation reach (the cross-shard analogue of the paper's outer-worker
offer), and degrades to the surviving shards when a gateway fail-stops.

Shards hide behind a small handle protocol with two implementations:

:class:`LocalShard`
    Wraps an in-process :class:`MatchingGateway`.  All shard gateways
    share one :class:`VirtualClock` instance, so the router advances a
    single cluster-wide virtual instant exactly like
    :class:`MatchingServer` does per arrival.

:class:`RemoteShard`
    Wraps a :class:`GatewayClient` speaking JSONL/TCP to a shard's
    :class:`MatchingServer` — reconnect/retry machinery included, so a
    shard process restart is survived transparently.

Cluster-wide invariants (paper Def. 2.5/2.6) follow from two routing
rules, and :meth:`ClusterRouter.drain` re-checks them from the recorded
outcomes when ``sanitize`` is on:

* every worker is homed on exactly one shard (claims are shard-local and
  serialized by that shard's decision loop), and
* a request is forwarded only after a final ``reject`` from its home
  shard, stopping at the first non-reject answer — so at most one shard
  ever serves it (the *invariable* constraint survives forwarding).

Router bookkeeping is single-driver state: exactly one task (a replay
driver, the cluster server's connection handler, or a bench pilot) may
call the submit methods at a time.  The ``# comlint: loop-owned``
markers hand those structures to the ASY004 ownership analysis with the
submit methods as the annotated entry points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Protocol

from repro.cluster.plan import ShardPlan
from repro.core.entities import Request, Worker
from repro.errors import (
    ConfigurationError,
    InducedCrash,
    SanitizerViolation,
    ServiceError,
)
from repro.service.client import GatewayClient
from repro.service.gateway import (
    STATUS_DEFERRED,
    STATUS_SHED,
    MatchingGateway,
    ServiceOutcome,
)

__all__ = [
    "ShardHandle",
    "LocalShard",
    "RemoteShard",
    "ClusterResult",
    "ClusterRouter",
    "merge_rows",
    "SERVE_STATUSES",
]

#: Decision statuses that consume the request (Def. 2.6: at most one).
SERVE_STATUSES = frozenset(("serve_inner", "serve_outer"))


class ShardHandle(Protocol):
    """What the router needs from one shard, local or remote."""

    shard_id: int

    @property
    def crashed(self) -> bool:
        """True once the shard has fail-stopped."""
        ...

    async def start(self) -> None: ...

    async def stop(self) -> None: ...

    async def submit_worker(self, worker: Worker) -> None: ...

    async def submit_request(self, request: Request) -> ServiceOutcome: ...

    async def replay_shed(self, request: Request) -> ServiceOutcome: ...

    async def outcome_of(self, request_id: str) -> ServiceOutcome | None: ...

    async def drain(self) -> dict: ...

    async def stats(self) -> dict: ...


class LocalShard:
    """An in-process shard: the router owns the gateway's lifecycle."""

    def __init__(self, shard_id: int, gateway: MatchingGateway):
        self.shard_id = shard_id
        self.gateway = gateway

    @property
    def crashed(self) -> bool:
        return self.gateway.crash_error is not None

    async def start(self) -> None:
        await self.gateway.start()

    async def stop(self) -> None:
        await self.gateway.stop()

    async def submit_worker(self, worker: Worker) -> None:
        self._advance(worker.arrival_time)
        await self.gateway.submit_worker(worker)

    async def submit_request(self, request: Request) -> ServiceOutcome:
        self._advance(request.arrival_time)
        return await self.gateway.submit_request(request)

    async def replay_shed(self, request: Request) -> ServiceOutcome:
        self._advance(request.arrival_time)
        return await self.gateway.replay_shed(request)

    async def outcome_of(self, request_id: str) -> ServiceOutcome | None:
        return self.gateway.outcome_of(request_id)

    async def drain(self) -> dict:
        await self.gateway.drain()
        return self.gateway.metrics_dict()

    async def stats(self) -> dict:
        return self.gateway.stats()

    def _advance(self, when: float) -> None:
        # Mirrors MatchingServer._dispatch: under the virtual clock every
        # arrival moves the (shared) cluster instant forward.
        clock = self.gateway.clock
        if clock.virtual:
            clock.advance_to(when)  # type: ignore[attr-defined]


class RemoteShard:
    """A shard behind JSONL/TCP, driven through :class:`GatewayClient`.

    The client's reconnect policy covers transient connection loss; a
    :class:`ServiceError` surviving it (or a refused reconnect) marks
    the shard crashed and the router fails over.
    """

    def __init__(self, shard_id: int, client: GatewayClient):
        self.shard_id = shard_id
        self.client = client
        self._crashed = False

    @property
    def crashed(self) -> bool:
        return self._crashed

    def mark_crashed(self) -> None:
        """Record a fail-stop observed by the router."""
        self._crashed = True

    async def start(self) -> None:
        await self.client.connect()

    async def stop(self) -> None:
        await self.client.close()

    async def submit_worker(self, worker: Worker) -> None:
        await self.client.submit_worker(worker)

    async def submit_request(self, request: Request) -> ServiceOutcome:
        return await self.client.submit_request(request)

    async def replay_shed(self, request: Request) -> ServiceOutcome:
        return await self.client.replay_shed(request)

    async def outcome_of(self, request_id: str) -> ServiceOutcome | None:
        return await self.client.outcome_of(request_id)

    async def drain(self) -> dict:
        return await self.client.drain()

    async def stats(self) -> dict:
        return await self.client.stats()


#: Exceptions that mean "this shard is gone", triggering failover.
_SHARD_DOWN = (InducedCrash, ServiceError, ConnectionError, OSError)


@dataclass
class ClusterResult:
    """What :meth:`ClusterRouter.drain` returns.

    ``row`` is the cluster-level metric row: for a 1-shard cluster it is
    the shard's row verbatim (the degenerate case is byte-identical to a
    single gateway); for N > 1 it is the :func:`merge_rows` aggregate.
    """

    row: dict
    shard_rows: list[dict | None]
    forwards: int = 0
    cross_shard_serves: int = 0
    failovers: int = 0
    crashed_shards: list[int] = field(default_factory=list)
    lost_workers: int = 0


def merge_rows(
    rows: list[dict],
    statuses: dict[str, str],
) -> dict:
    """Aggregate shard metric rows into one cluster row.

    Per-platform money and completion counts sum across shards (each
    serve lives on exactly one shard, so sums never double-count).
    ``acceptance_ratio`` is recomputed from the cluster-final request
    statuses — per-shard ratios are meaningless once a request can be
    rejected at home and served next door.  ``payment_rate`` and
    ``response_time_ms`` are completion-weighted means; telemetry does
    not aggregate across processes and is dropped.
    """
    if not rows:
        raise ConfigurationError("merge_rows needs at least one shard row")
    platforms: set[str] = set()
    for row in rows:
        platforms.update(row["revenue"])

    def _sum_by_platform(key: str) -> dict:
        return {
            platform: sum(row[key].get(platform, 0) for row in rows)
            for platform in sorted(platforms)
        }

    completed = _sum_by_platform("completed")
    completed_total = sum(completed.values())

    def _completion_weighted(key: str) -> float | None:
        weighted = 0.0
        weight = 0
        for row in rows:
            value = row.get(key)
            if value is None:
                continue
            row_completed = sum(row["completed"].values())
            weighted += value * row_completed
            weight += row_completed
        if weight == 0:
            values = [row[key] for row in rows if row.get(key) is not None]
            if not values:
                return None
            return sum(values) / len(values)
        return weighted / weight

    served = sum(
        1 for status in statuses.values() if status in SERVE_STATUSES
    )
    decided = len(statuses)
    return {
        "algorithm": rows[0]["algorithm"],
        "scenario": rows[0]["scenario"],
        "revenue": _sum_by_platform("revenue"),
        "platform_revenue": _sum_by_platform("platform_revenue"),
        "lender_income": _sum_by_platform("lender_income"),
        "completed": completed,
        "response_time_ms": _completion_weighted("response_time_ms") or 0.0,
        "memory_mb": sum(row["memory_mb"] for row in rows),
        "cooperative": sum(row["cooperative"] for row in rows),
        "acceptance_ratio": served / decided if decided else 0.0,
        "payment_rate": _completion_weighted("payment_rate"),
        "runs": 1,
        "retries": sum(row["retries"] for row in rows),
        "failed_claims": sum(row["failed_claims"] for row in rows),
        "degraded_decisions": sum(row["degraded_decisions"] for row in rows),
        "dropped_workers": sum(row["dropped_workers"] for row in rows),
        "outage_seconds": sum(row["outage_seconds"] for row in rows),
        "telemetry": None,
        "shards": len(rows),
        "completed_total": completed_total,
    }


class ClusterRouter:
    """Routes arrivals across shard gateways per a :class:`ShardPlan`."""

    def __init__(
        self,
        plan: ShardPlan,
        shards: list[ShardHandle],
        sanitize: bool = False,
    ):
        if len(shards) != plan.shard_count:
            raise ConfigurationError(
                f"plan wants {plan.shard_count} shards, got {len(shards)}"
            )
        for index, shard in enumerate(shards):
            if shard.shard_id != index:
                raise ConfigurationError(
                    f"shard at position {index} has id {shard.shard_id}"
                )
        self.plan = plan
        self.shards = shards
        self.sanitize = sanitize
        # Single-driver router state: one pilot task calls the submit
        # methods (marked loop-entry below), exactly like one connection
        # drives a MatchingServer.
        self._worker_home: dict[str, int] = {}  # comlint: loop-owned
        self._worker_shareable: dict[str, bool] = {}  # comlint: loop-owned
        self._statuses: dict[str, tuple[int, str]] = {}  # comlint: loop-owned
        self._dead: set[int] = set()  # comlint: loop-owned
        self.forwards = 0
        self.cross_shard_serves = 0
        self.failovers = 0
        self.lost_workers = 0
        self.routed_workers = 0
        self.routed_requests = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "ClusterRouter":
        """Start every shard; returns self for chaining."""
        for shard in self.shards:
            await shard.start()
        return self

    async def stop(self) -> None:
        """Stop every shard (a crashed shard's stop is a safe no-op)."""
        for shard in self.shards:
            await shard.stop()

    # -- routing -------------------------------------------------------------

    def _live(self) -> list[int]:
        return [
            shard.shard_id
            for shard in self.shards
            if shard.shard_id not in self._dead
        ]

    def _home_shard(self, request: Request) -> int:  # comlint: loop-entry
        """The live shard owning the request's cell, after failover."""
        home = self.plan.shard_of(request.location)
        if home not in self._dead:
            return home
        for candidate in self.plan.shards_in_disk(
            request.location, max(self.plan.reach_km, self.plan.cell_km)
        ):
            if candidate not in self._dead:
                return candidate
        live = self._live()
        if not live:
            raise ServiceError("every shard in the cluster has crashed")
        return live[0]

    def _mark_dead(self, shard_id: int) -> None:  # comlint: loop-entry
        if shard_id in self._dead:
            return
        self._dead.add(shard_id)
        shard = self.shards[shard_id]
        if isinstance(shard, RemoteShard):
            shard.mark_crashed()
        # Workers homed on the dead shard are lost with its state —
        # the degraded cluster serves from the survivors only.
        self.lost_workers += sum(
            1
            for worker_id in sorted(self._worker_home)
            if self._worker_home[worker_id] == shard_id
        )

    async def submit_worker(self, worker: Worker) -> None:  # comlint: loop-entry
        """Route one worker arrival to the shard owning its location."""
        self.routed_workers += 1
        shard_id = self.plan.shard_of(worker.location)
        if shard_id in self._dead:
            shard_id = self._home_shard_for_point(worker)
        shard = self.shards[shard_id]
        try:
            await shard.submit_worker(worker)
        except _SHARD_DOWN:
            if not shard.crashed:
                raise
            self._mark_dead(shard_id)
            self.failovers += 1
            fallback = self._home_shard_for_point(worker)
            await self.shards[fallback].submit_worker(worker)
            self._worker_home[worker.worker_id] = fallback
            self._worker_shareable[worker.worker_id] = worker.shareable
            return
        self._worker_home[worker.worker_id] = shard_id
        self._worker_shareable[worker.worker_id] = worker.shareable

    def _home_shard_for_point(self, worker: Worker) -> int:  # comlint: loop-entry
        for candidate in self.plan.shards_in_disk(
            worker.location, max(worker.service_radius, self.plan.cell_km)
        ):
            if candidate not in self._dead:
                return candidate
        live = self._live()
        if not live:
            raise ServiceError("every shard in the cluster has crashed")
        return live[0]

    async def submit_request(  # comlint: loop-entry
        self, request: Request
    ) -> ServiceOutcome:
        """Decide one request, forwarding rejects across shard borders.

        The home shard answers first.  On a final ``reject`` the request
        is offered — in sorted shard order, the deterministic analogue of
        the paper's cooperation sequence — to every other live shard
        whose territory intersects the request's cooperation reach
        (``plan.reach_km``); the first non-reject answer wins and
        forwarding stops, so at most one shard ever serves the request.
        ``deferred`` answers stay home: the home shard's batching
        algorithm still owns the final decision and may yet serve it.
        """
        self.routed_requests += 1
        home = self._home_shard(request)
        outcome = await self._submit_with_failover(home, request)
        home = self._statuses[request.request_id][0]
        if outcome.status != "reject":
            return outcome
        # Forward exactly as far as cooperation can reach: no worker
        # serves beyond the trace's maximum service radius, so shards
        # whose territory lies outside it can never change the answer.
        for neighbour in self.plan.shards_in_disk(
            request.location, self.plan.reach_km
        ):
            if neighbour == home or neighbour in self._dead:
                continue
            self.forwards += 1
            shard = self.shards[neighbour]
            try:
                forwarded = await shard.submit_request(request)
            except _SHARD_DOWN:
                if not shard.crashed:
                    raise
                self._mark_dead(neighbour)
                self.failovers += 1
                continue
            if forwarded.status not in ("reject", STATUS_SHED):
                self.cross_shard_serves += 1
                self._statuses[request.request_id] = (
                    neighbour,
                    forwarded.status,
                )
                return forwarded
        return outcome

    async def _submit_with_failover(  # comlint: loop-entry
        self, shard_id: int, request: Request
    ) -> ServiceOutcome:
        shard = self.shards[shard_id]
        try:
            outcome = await shard.submit_request(request)
        except _SHARD_DOWN:
            if not shard.crashed:
                raise
            self._mark_dead(shard_id)
            self.failovers += 1
            fallback = self._home_shard(request)
            outcome = await self.shards[fallback].submit_request(request)
            self._statuses[request.request_id] = (fallback, outcome.status)
            return outcome
        self._statuses[request.request_id] = (shard_id, outcome.status)
        return outcome

    async def replay_shed(  # comlint: loop-entry
        self, request: Request
    ) -> ServiceOutcome:
        """Re-apply a recorded shed at the request's home shard."""
        self.routed_requests += 1
        home = self._home_shard(request)
        outcome = await self.shards[home].replay_shed(request)
        self._statuses[request.request_id] = (home, outcome.status)
        return outcome

    async def outcome_of(  # comlint: loop-entry
        self, request_id: str
    ) -> ServiceOutcome | None:
        """The recorded outcome of a request (None if unknown)."""
        routed = self._statuses.get(request_id)
        if routed is None:
            return None
        shard_id, _status = routed
        if shard_id in self._dead:
            return None
        return await self.shards[shard_id].outcome_of(request_id)

    # -- shutdown ------------------------------------------------------------

    async def drain(self) -> ClusterResult:  # comlint: loop-entry
        """Drain every live shard and aggregate the cluster row.

        Deferred requests resolve during the per-shard drains (batch
        flush), so the final statuses are re-read from the owning shard
        before the cluster row is computed.  With ``sanitize`` on the
        cluster-level Def. 2.5/2.6 checks run over the collected
        outcomes and raise :class:`SanitizerViolation` on any breach.
        """
        shard_rows: list[dict | None] = [None] * len(self.shards)
        for shard in self.shards:
            if shard.shard_id in self._dead:
                continue
            try:
                shard_rows[shard.shard_id] = await shard.drain()
            except _SHARD_DOWN:
                if not shard.crashed:
                    raise
                self._mark_dead(shard.shard_id)
                self.failovers += 1
        statuses = await self._final_statuses()
        if self.sanitize:
            self._check_cluster_invariants(statuses)
        live_rows = [row for row in shard_rows if row is not None]
        if not live_rows:
            raise ServiceError("no shard survived to drain")
        if len(self.shards) == 1:
            row = live_rows[0]
        else:
            row = merge_rows(
                live_rows,
                {rid: status for rid, (_sid, status) in statuses.items()},
            )
        return ClusterResult(
            row=row,
            shard_rows=shard_rows,
            forwards=self.forwards,
            cross_shard_serves=self.cross_shard_serves,
            failovers=self.failovers,
            crashed_shards=sorted(self._dead),
            lost_workers=self.lost_workers,
        )

    async def _final_statuses(self) -> dict[str, tuple[int, str]]:  # comlint: loop-entry
        """Per-request final (shard, status), resolving deferred answers."""
        final: dict[str, tuple[int, str]] = {}
        for request_id in sorted(self._statuses):
            shard_id, status = self._statuses[request_id]
            if status == STATUS_DEFERRED and shard_id not in self._dead:
                resolved = await self.shards[shard_id].outcome_of(request_id)
                if resolved is not None:
                    status = resolved.status
            final[request_id] = (shard_id, status)
        return final

    def _check_cluster_invariants(  # comlint: loop-entry
        self, statuses: dict[str, tuple[int, str]]
    ) -> None:
        """Cluster-wide Def. 2.5/2.6 checks over routed outcomes.

        Shard-local invariants (ledger conservation, per-worker single
        service, deadlines) are each shard's ConstraintSanitizer's job;
        what routing itself could break is the *invariable* constraint —
        a request served by more than one shard — and worker locality —
        a serve answered by a worker the router homed elsewhere.
        """
        serving_workers: dict[str, str] = {}
        for request_id in sorted(statuses):
            shard_id, status = statuses[request_id]
            if status not in SERVE_STATUSES:
                continue
            shard = self.shards[shard_id]
            if not isinstance(shard, LocalShard):
                continue
            outcome = shard.gateway.outcome_of(request_id)
            if outcome is None or outcome.worker_id is None:
                continue
            worker_id = outcome.worker_id
            home = self._worker_home.get(worker_id)
            if home is not None and home != shard_id:
                raise SanitizerViolation(
                    "cluster-worker-locality",
                    f"request {request_id} served on shard {shard_id} by "
                    f"worker {worker_id} homed on shard {home}: worker "
                    "state leaked across the shard boundary",
                    request_id=request_id,
                    worker_id=worker_id,
                )
            first = serving_workers.get(worker_id)
            if first is not None and first != request_id:
                if not self._worker_shareable.get(worker_id, True):
                    raise SanitizerViolation(
                        "cluster-invariable",
                        f"non-shareable worker {worker_id} serves both "
                        f"{first} and {request_id} cluster-wide",
                        request_id=request_id,
                        worker_id=worker_id,
                    )
            else:
                serving_workers[worker_id] = request_id

    # -- operations ----------------------------------------------------------

    async def handoff(  # comlint: loop-entry
        self, shard_id: int, path: str | Path
    ) -> None:
        """Rebalance: move a shard's state to a fresh gateway via COMSNAP1.

        Drains nothing — the shard's decision loop checkpoints *between*
        decisions (snapshot job), stops, and a new gateway restores from
        the checkpoint on the same shared clock.  Only meaningful for
        local shards; remote shard processes snapshot/restore themselves.
        """
        shard = self.shards[shard_id]
        if not isinstance(shard, LocalShard):
            raise ServiceError(
                f"shard {shard_id} is remote; handoff runs on its host"
            )
        if shard_id in self._dead:
            raise ServiceError(f"shard {shard_id} has crashed")
        old = shard.gateway
        await old.snapshot(path)
        await old.stop()
        restored = MatchingGateway.from_snapshot(path, clock=old.clock)
        restored.shard_info = dict(old.shard_info or {})
        await restored.start()
        shard.gateway = restored

    async def stats(self) -> dict:  # comlint: loop-entry
        """Cluster-level statistics plus every live shard's own stats."""
        per_shard: list[dict | None] = []
        for shard in self.shards:
            if shard.shard_id in self._dead:
                per_shard.append(None)
                continue
            per_shard.append(await shard.stats())
        return {
            "shards": self.plan.shard_count,
            "live": self._live(),
            "crashed": sorted(self._dead),
            "routed_workers": self.routed_workers,
            "routed_requests": self.routed_requests,
            "forwards": self.forwards,
            "cross_shard_serves": self.cross_shard_serves,
            "failovers": self.failovers,
            "lost_workers": self.lost_workers,
            "plan": self.plan.as_dict(),
            "per_shard": per_shard,
        }
