"""Cluster-ordered ``COMEVT1`` recordings from per-shard event streams.

Each shard gateway records its own ``COMEVT1`` stream.  A cluster run's
record of truth is the *merge*: one stream, deterministically ordered,
with every canonical event annotated with the shard that produced it, a
single cluster ``meta`` event carrying the shard plan, and a final
cluster ``drain`` event carrying the digest of the merged metric row.

The merge order is the cluster's arrival order: ``(time, kind-rank,
entity id, shard, seq)``, with workers ranked before decisions at equal
times — exactly the :meth:`~repro.core.events.ArrivalEvent.sort_key`
convention the trace generators use, extended with the shard id so a
request forwarded across a shard border (one ``reject`` at home, one
answer next door, same entity at the same instant) lands in cooperation
order.  Because both the live run and its replay merge with the same
key, byte-comparing canonical projections of the two merged streams is
exactly the single-gateway replay identity, cluster-wide.

The degenerate single-shard merge is the identity: a 1-shard cluster
recording is byte-identical to the wrapped gateway's own stream, so the
existing ``replay-events --verify`` machinery consumes it unchanged.
"""

from __future__ import annotations

from pathlib import Path

from repro.cluster.plan import ShardPlan
from repro.errors import EventLogError
from repro.obs.events import (
    CANONICAL_KINDS,
    GatewayEvent,
    encode_canonical,
    row_digest,
)

__all__ = [
    "merge_shard_streams",
    "write_recording",
    "cluster_meta_of",
    "shard_streams_of",
    "final_statuses_of",
]

#: Merge ranks: workers enter before same-instant request answers (the
#: trace sort-key convention); resolutions follow the decisions that
#: flushed them; ops markers and drains close an instant.
_KIND_RANK = {
    "meta": 0,
    "worker": 1,
    "decision": 2,
    "shed": 2,
    "resolution": 3,
    "breaker": 4,
    "metrics": 4,
    "crash": 4,
    "recovered": 4,
    "drain": 5,
}


def _entity_id(event: GatewayEvent) -> str:
    """The id that anchors an event's merge position at equal times."""
    if event.kind == "worker":
        worker = event.fields.get("worker")
        if isinstance(worker, dict):
            return str(worker.get("id", ""))
    if event.kind in ("decision", "shed"):
        request = event.fields.get("request")
        if isinstance(request, dict):
            return str(request.get("id", ""))
    if event.kind == "resolution":
        return str(event.fields.get("request", ""))
    return ""


def _merge_key(
    event: GatewayEvent, shard_id: int
) -> tuple[float, int, str, int, int]:
    return (
        event.time,
        _KIND_RANK.get(event.kind, 4),
        _entity_id(event),
        shard_id,
        event.seq,
    )


def merge_shard_streams(
    shard_events: list[list[GatewayEvent]],
    plan: ShardPlan,
    row: dict,
) -> list[GatewayEvent]:
    """Merge per-shard streams into one cluster-ordered recording.

    ``row`` is the cluster metric row (:func:`repro.cluster.router.
    merge_rows` output, or the sole shard's row): its digest seals the
    recording in the final cluster ``drain`` event.  For a single shard
    the merge is the identity — the shard's stream, untouched.
    """
    if len(shard_events) != plan.shard_count:
        raise EventLogError(
            f"plan wants {plan.shard_count} shard streams, "
            f"got {len(shard_events)}"
        )
    if plan.shard_count == 1:
        return list(shard_events[0])

    metas = [
        next((event for event in events if event.kind == "meta"), None)
        for events in shard_events
    ]
    first_meta = next((meta for meta in metas if meta is not None), None)
    if first_meta is None:
        raise EventLogError("no shard stream carries a meta event")

    keyed: list[tuple[tuple[float, int, str, int, int], GatewayEvent]] = []
    last_time = 0.0
    for shard_id, events in enumerate(shard_events):
        for event in events:
            if event.kind == "meta":
                continue
            last_time = max(last_time, event.time)
            annotated = GatewayEvent(
                seq=event.seq,
                kind=event.kind,
                time=event.time,
                fields={**event.fields, "shard": shard_id},
            )
            keyed.append((_merge_key(event, shard_id), annotated))
    keyed.sort(key=lambda pair: pair[0])

    merged: list[GatewayEvent] = [
        GatewayEvent(
            seq=0,
            kind="meta",
            time=0.0,
            fields={
                **first_meta.fields,
                "shards": plan.shard_count,
                "plan": plan.as_dict(),
            },
        )
    ]
    for _key, event in keyed:
        merged.append(
            GatewayEvent(
                seq=len(merged),
                kind=event.kind,
                time=event.time,
                fields=event.fields,
            )
        )
    merged.append(
        GatewayEvent(
            seq=len(merged),
            kind="drain",
            time=last_time,
            fields={
                "shards": plan.shard_count,
                "metrics_sha256": row_digest(row),
            },
        )
    )
    return merged


def write_recording(events: list[GatewayEvent], path: str | Path) -> Path:
    """Write a merged recording as a ``COMEVT1``-compatible JSONL file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [encode_canonical(event.as_dict()) for event in events]
    path.write_bytes(b"\n".join(lines) + b"\n" if lines else b"")
    return path


def cluster_meta_of(events: list[GatewayEvent]) -> GatewayEvent:
    """The stream's meta event; raises if the recording has none."""
    meta = next((event for event in events if event.kind == "meta"), None)
    if meta is None:
        raise EventLogError("recording has no meta event")
    return meta


def shard_streams_of(
    events: list[GatewayEvent], shard_count: int
) -> list[list[GatewayEvent]]:
    """Split a merged recording back into per-shard substreams.

    The cluster meta and the final cluster ``drain`` (the only canonical
    events without a ``shard`` annotation) belong to no shard.  Within a
    substream the merged order *is* the shard's submission order — the
    merge key restricted to one shard preserves it.
    """
    streams: list[list[GatewayEvent]] = [[] for _ in range(shard_count)]
    for event in events:
        shard = event.fields.get("shard")
        if shard is None:
            continue
        shard_id = int(shard)  # type: ignore[call-overload]
        if not 0 <= shard_id < shard_count:
            raise EventLogError(
                f"event annotated with shard {shard_id}, "
                f"but the plan has {shard_count} shards"
            )
        streams[shard_id].append(event)
    return streams


def final_statuses_of(events: list[GatewayEvent]) -> dict[str, str]:
    """Cluster-final status per request id, from canonical events.

    A serve on any shard wins (the router stops forwarding at the first
    accept, so there is at most one); a ``resolution`` overrides the
    ``deferred`` decision it settles; otherwise the last recorded status
    stands (``reject`` everywhere, or ``shed``).  This mirrors how the
    live router computes the statuses fed to ``merge_rows``, so a replay
    reconstructs the identical cluster row.
    """
    from repro.cluster.router import SERVE_STATUSES

    statuses: dict[str, str] = {}
    for event in events:
        if event.kind not in CANONICAL_KINDS:
            continue
        if event.kind == "decision":
            request = event.fields.get("request")
            request_id = (
                str(request.get("id", ""))
                if isinstance(request, dict)
                else ""
            )
            status = str(event.fields.get("status", ""))
        elif event.kind == "resolution":
            request_id = str(event.fields.get("request", ""))
            status = str(event.fields.get("status", ""))
        elif event.kind == "shed":
            request = event.fields.get("request")
            request_id = (
                str(request.get("id", ""))
                if isinstance(request, dict)
                else ""
            )
            status = "shed"
        else:
            continue
        if not request_id:
            continue
        current = statuses.get(request_id)
        if current in SERVE_STATUSES:
            continue
        statuses[request_id] = status
    return statuses
