"""Cluster assembly and the JSONL front door.

Builders wire a :class:`~repro.cluster.router.ClusterRouter` to its
shard gateways in the two supported topologies:

:func:`local_cluster`
    Every shard is an in-process :class:`MatchingGateway` on one shared
    :class:`VirtualClock` — the deterministic topology replay and the
    test suite use.

:func:`tcp_cluster`
    Every shard gateway sits behind its own loopback
    :class:`MatchingServer` and the router reaches it through a
    :class:`GatewayClient` (reconnect machinery included) — the wire
    topology ``com-repro serve-cluster`` boots and the cluster bench
    measures.

:class:`ClusterServer` exposes the router over the same JSONL protocol
as a single gateway (ping / worker / request / shed / outcome / stats /
drain), so any existing client can talk to a cluster without knowing it
is one — the ``stats`` verb answers the cluster topology instead of a
single gateway's counters.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

from repro.cluster.plan import ShardPlan
from repro.cluster.recording import merge_shard_streams, write_recording
from repro.cluster.router import (
    ClusterResult,
    ClusterRouter,
    LocalShard,
    RemoteShard,
    ShardHandle,
)
from repro.core.events import EventKind, EventStream
from repro.core.simulator import Scenario, SimulatorConfig
from repro.errors import InducedCrash, ReproError, ServiceError
from repro.faults.crash import CrashPlan
from repro.faults.plan import RetryPolicy
from repro.obs.events import EventLog, GatewayEvent
from repro.service.client import GatewayClient
from repro.service.clock import ServiceClock, VirtualClock
from repro.service.gateway import MatchingGateway
from repro.service.server import DEFAULT_HOST, MatchingServer, encode_response
from repro.service.wire import request_from_wire, worker_from_wire

__all__ = [
    "build_shard_gateway",
    "local_cluster",
    "tcp_cluster",
    "drive_cluster",
    "recording_of",
    "ClusterServer",
]


def build_shard_gateway(
    shard_id: int,
    scenario: Scenario,
    plan: ShardPlan,
    algorithm: str = "ramcom",
    config: SimulatorConfig | None = None,
    clock: ServiceClock | None = None,
    journal: str | Path | None = None,
    crash_plan: CrashPlan | None = None,
    events: EventLog | None = None,
    batch_max: int = 1,
    batch_linger_ms: float = 0.0,
) -> MatchingGateway:
    """One shard gateway, stamped with its territory summary.

    Every shard carries the *full* scenario: entity interning, the
    behaviour oracle and the platform set work unchanged, and the shard
    only ever sees the arrivals the router sends its way.
    """
    gateway = MatchingGateway(
        scenario,
        algorithm,
        config,
        clock=clock,
        journal=journal,
        crash_plan=crash_plan,
        events=events,
        batch_max=batch_max,
        batch_linger_ms=batch_linger_ms,
    )
    gateway.shard_info = plan.shard_summary(shard_id)
    return gateway


def local_cluster(
    scenario: Scenario,
    plan: ShardPlan,
    algorithm: str = "ramcom",
    config: SimulatorConfig | None = None,
    clock: VirtualClock | None = None,
    journal_dirs: dict[int, str | Path] | None = None,
    crash_plans: dict[int, CrashPlan] | None = None,
    sanitize: bool = False,
    batch_max: int = 1,
    batch_linger_ms: float = 0.0,
) -> tuple[ClusterRouter, list[EventLog], VirtualClock]:
    """An in-process cluster on one shared virtual clock.

    Each shard records its own unbounded in-memory ``COMEVT1`` stream;
    merge them with :func:`recording_of` after the drain.  ``crash_plans``
    arms shard-granular kill points — a crashing shard must also appear
    in ``journal_dirs``, because every crash channel sits on the journal
    path.
    """
    shared = clock or VirtualClock()
    journal_dirs = journal_dirs or {}
    crash_plans = crash_plans or {}
    logs: list[EventLog] = []
    handles: list[ShardHandle] = []
    for shard_id in range(plan.shard_count):
        log = EventLog(ring=0)
        gateway = build_shard_gateway(
            shard_id,
            scenario,
            plan,
            algorithm,
            config,
            clock=shared,
            journal=journal_dirs.get(shard_id),
            crash_plan=crash_plans.get(shard_id),
            events=log,
            batch_max=batch_max,
            batch_linger_ms=batch_linger_ms,
        )
        logs.append(log)
        handles.append(LocalShard(shard_id, gateway))
    router = ClusterRouter(plan, handles, sanitize=sanitize)
    return router, logs, shared


async def tcp_cluster(
    scenario: Scenario,
    plan: ShardPlan,
    algorithm: str = "ramcom",
    config: SimulatorConfig | None = None,
    host: str = DEFAULT_HOST,
    base_port: int = 0,
    journal_dirs: dict[int, str | Path] | None = None,
    crash_plans: dict[int, CrashPlan] | None = None,
    sanitize: bool = False,
    reconnect: RetryPolicy | None = None,
    batch_max: int = 1,
    batch_linger_ms: float = 0.0,
) -> tuple[ClusterRouter, list[EventLog], list[MatchingServer], VirtualClock]:
    """A cluster of loopback shard servers reached through clients.

    Servers are started here (their gateways with them); the returned
    router's :meth:`~repro.cluster.router.ClusterRouter.start` then only
    connects the clients.  ``base_port=0`` binds ephemeral ports;
    otherwise shard *k* listens on ``base_port + k``.
    """
    shared = VirtualClock()
    journal_dirs = journal_dirs or {}
    crash_plans = crash_plans or {}
    logs: list[EventLog] = []
    servers: list[MatchingServer] = []
    handles: list[ShardHandle] = []
    policy = reconnect or RetryPolicy(max_attempts=3, base_backoff_s=0.05)
    for shard_id in range(plan.shard_count):
        log = EventLog(ring=0)
        gateway = build_shard_gateway(
            shard_id,
            scenario,
            plan,
            algorithm,
            config,
            clock=shared,
            journal=journal_dirs.get(shard_id),
            crash_plan=crash_plans.get(shard_id),
            events=log,
            batch_max=batch_max,
            batch_linger_ms=batch_linger_ms,
        )
        port = 0 if base_port == 0 else base_port + shard_id
        server = MatchingServer(gateway, host=host, port=port)
        bound_host, bound_port = await server.start()
        client = GatewayClient(
            bound_host, bound_port, reconnect=policy, reconnect_seed=shard_id
        )
        logs.append(log)
        servers.append(server)
        handles.append(RemoteShard(shard_id, client))
    router = ClusterRouter(plan, handles, sanitize=sanitize)
    return router, logs, servers, shared


async def drive_cluster(
    router: ClusterRouter,
    events: EventStream,
    stop_after: int | None = None,
) -> ClusterResult | None:
    """Route a trace through the cluster in arrival order, then drain.

    ``stop_after`` (counted in arrivals) stops early *without* draining
    and returns ``None`` — the mid-stream hook the handoff and failover
    drills use; the caller keeps submitting and drains itself.
    """
    driven = 0
    for event in events:
        if stop_after is not None and driven >= stop_after:
            return None
        if event.kind is EventKind.WORKER:
            assert event.worker is not None
            await router.submit_worker(event.worker)
        else:
            assert event.request is not None
            await router.submit_request(event.request)
        driven += 1
    return await router.drain()


async def stop_tcp_cluster(
    router: ClusterRouter, servers: list[MatchingServer]
) -> None:
    """Tear a :func:`tcp_cluster` down in dependency order.

    Clients close before their servers, so no connection handler is
    cancelled mid-read; crashed shards' servers are already gone and
    stop as a no-op.
    """
    await router.stop()
    for server in servers:
        await server.stop()


def recording_of(
    router: ClusterRouter,
    logs: list[EventLog],
    result: ClusterResult,
    path: str | Path | None = None,
) -> list[GatewayEvent]:
    """The cluster-ordered merged recording of a drained run.

    With a crashed shard the merge still includes whatever the dead
    shard emitted before fail-stopping (its ``crash`` marker included)
    — the degraded recording documents the outage; it is not expected
    to verify byte-identical.
    """
    streams = [list(log.events()) for log in logs]
    merged = merge_shard_streams(streams, router.plan, result.row)
    if path is not None:
        write_recording(merged, path)
    return merged


class ClusterServer:
    """Serves a :class:`ClusterRouter` over JSONL/TCP."""

    def __init__(
        self,
        router: ClusterRouter,
        clock: ServiceClock,
        host: str = DEFAULT_HOST,
        port: int = 0,
        logs: list[EventLog] | None = None,
        record: str | Path | None = None,
    ):
        self.router = router
        self.clock = clock
        self.host = host
        self.port = port
        #: Per-shard event logs; with ``record`` set, their merged
        #: cluster-ordered recording is written at drain.
        self.logs = logs
        self.record = Path(record) if record is not None else None
        self._server: asyncio.base_events.Server | None = None
        self._result: ClusterResult | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port); valid after :meth:`start`."""
        if self._server is None:
            raise ServiceError("cluster server not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> tuple[str, int]:
        """Start every shard and the front listener."""
        await self.router.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        return self.address

    async def stop(self) -> None:
        """Close the listener and stop the shards."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.router.stop()

    async def serve_forever(self) -> None:
        """Block serving connections until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = await self._answer(line)
                writer.write(encode_response(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-write; nothing to answer
        finally:
            writer.close()

    async def _answer(self, line: bytes) -> dict:
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            return {"ok": False, "verb": None, "error": f"bad JSON: {error}"}
        if not isinstance(payload, dict):
            return {
                "ok": False,
                "verb": None,
                "error": "payload must be an object",
            }
        verb = payload.get("verb")
        try:
            return await self._dispatch(verb, payload)
        except InducedCrash as error:
            # A shard died and no survivor could take the arrival — the
            # cluster front stays up and reports the degradation.
            return {"ok": False, "verb": verb, "error": f"shard lost: {error}"}
        except (ReproError, ValueError, TypeError) as error:
            return {"ok": False, "verb": verb, "error": str(error)}

    async def _dispatch(self, verb: object, payload: dict) -> dict:
        router = self.router
        if verb == "ping":
            return {
                "ok": True,
                "verb": "ping",
                "clock": self.clock.now(),
                "virtual": self.clock.virtual,
                "shards": router.plan.shard_count,
            }
        if verb == "request":
            request = request_from_wire(
                payload.get("request") or {}, self.clock.now()
            )
            outcome = await router.submit_request(request)
            return {"ok": True, "verb": "request", "outcome": outcome.as_dict()}
        if verb == "worker":
            worker = worker_from_wire(
                payload.get("worker") or {}, self.clock.now()
            )
            await router.submit_worker(worker)
            return {"ok": True, "verb": "worker", "worker_id": worker.worker_id}
        if verb == "shed":
            request = request_from_wire(
                payload.get("request") or {}, self.clock.now()
            )
            outcome = await router.replay_shed(request)
            return {"ok": True, "verb": "shed", "outcome": outcome.as_dict()}
        if verb == "outcome":
            request_id = str(payload.get("request_id", ""))
            outcome = await router.outcome_of(request_id)
            return {
                "ok": True,
                "verb": "outcome",
                "request_id": request_id,
                "outcome": outcome.as_dict() if outcome is not None else None,
            }
        if verb == "stats":
            return {"ok": True, "verb": "stats", "stats": await router.stats()}
        if verb == "drain":
            if self._result is None:
                self._result = await router.drain()
                if self.record is not None and self.logs is not None:
                    recording_of(router, self.logs, self._result, self.record)
            return {
                "ok": True,
                "verb": "drain",
                "metrics": self._result.row,
                "forwards": self._result.forwards,
                "cross_shard_serves": self._result.cross_shard_serves,
                "failovers": self._result.failovers,
                "crashed_shards": self._result.crashed_shards,
            }
        return {"ok": False, "verb": verb, "error": f"unknown verb {verb!r}"}
