"""Sharded multi-gateway cluster with spatial routing (docs/CLUSTER.md).

One :class:`~repro.cluster.plan.ShardPlan` partitions the city into grid
cells, a :class:`~repro.cluster.router.ClusterRouter` routes arrivals to
the shard gateway owning each cell and forwards rejected requests across
shard borders (the cross-shard cooperation exchange), and the recording
helpers merge per-shard ``COMEVT1`` streams into one cluster-ordered
stream that :func:`~repro.cluster.replay.replay_cluster_log` can verify
byte for byte.
"""

from repro.cluster.plan import ShardPlan, reach_from_events
from repro.cluster.recording import (
    final_statuses_of,
    merge_shard_streams,
    shard_streams_of,
    write_recording,
)
from repro.cluster.replay import ClusterReplayReport, replay_cluster_log
from repro.cluster.router import (
    ClusterResult,
    ClusterRouter,
    LocalShard,
    RemoteShard,
    ShardHandle,
    merge_rows,
)
from repro.cluster.server import (
    ClusterServer,
    build_shard_gateway,
    drive_cluster,
    local_cluster,
    recording_of,
    stop_tcp_cluster,
    tcp_cluster,
)

__all__ = [
    "ShardPlan",
    "reach_from_events",
    "ClusterRouter",
    "ClusterResult",
    "LocalShard",
    "RemoteShard",
    "ShardHandle",
    "merge_rows",
    "merge_shard_streams",
    "shard_streams_of",
    "final_statuses_of",
    "write_recording",
    "ClusterReplayReport",
    "replay_cluster_log",
    "ClusterServer",
    "build_shard_gateway",
    "local_cluster",
    "tcp_cluster",
    "stop_tcp_cluster",
    "drive_cluster",
    "recording_of",
]
