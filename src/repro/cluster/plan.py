"""Spatial shard plans: grid-cell → shard assignment for the cluster.

A :class:`ShardPlan` partitions the planar city model into grid cells
(the same ``floor(coord / cell)`` convention as
:class:`repro.geo.grid_index.GridIndex`) and assigns every cell to one
of ``shard_count`` shard gateways.  Two construction modes exist:

``ShardPlan.uniform``
    Stripes equal-width cell columns across shards — the right default
    when arrivals are roughly uniform over the city.

``ShardPlan.from_density``
    Heterogeneity-aware: counts arrival weight per cell from a scenario's
    event stream, splits *hot* cells (weight above ``hot_factor`` times
    the mean) into four half-size subcells, then walks the regions in
    deterministic scan order cutting contiguous, load-balanced bands.
    This mirrors the density-adaptive partitioning argument of
    arXiv 2310.12433: dense downtown cells get finer shard granularity
    than sparse suburbs.

The plan is pure data — symmetric ``as_dict`` / ``from_dict`` codecs let
the router embed it in cluster recordings so a replay can rebuild the
exact same topology.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.events import EventKind, EventStream
from repro.errors import ConfigurationError
from repro.geo.point import Point

Cell = tuple[int, int]

# Deterministic cell mixing for out-of-bounds fallback routing.  These are
# the classic 2-D spatial-hash primes; builtin hash() is banned (DET004)
# because it is salted per process and would break replay determinism.
_MIX_X = 73856093
_MIX_Y = 19349663


def _cell_key(cell: Cell) -> str:
    return f"{cell[0]},{cell[1]}"


def _key_cell(key: str) -> Cell:
    left, _, right = key.partition(",")
    return (int(left), int(right))


@dataclass
class ShardPlan:
    """Immutable-by-convention map from grid cells to shard ids.

    Attributes
    ----------
    shard_count:
        Number of shard gateways in the cluster.
    cell_km:
        Base grid cell edge length in kilometres.
    reach_km:
        The largest worker service radius the plan must honour; the
        router forwards rejected requests to every shard whose cells
        intersect the request's reach disk.
    assignment:
        Base-cell → shard id for every cell the plan covers.
    split:
        Hot base cells refined to half-size subcells, each with its own
        shard id.  A base cell present here must not appear in
        ``assignment``.
    """

    shard_count: int
    cell_km: float
    reach_km: float = 0.0
    assignment: dict[Cell, int] = field(default_factory=dict)
    split: dict[Cell, dict[Cell, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.shard_count < 1:
            raise ConfigurationError(
                f"shard_count must be >= 1, got {self.shard_count}"
            )
        if self.cell_km <= 0.0:
            raise ConfigurationError(
                f"cell_km must be positive, got {self.cell_km}"
            )
        if self.reach_km < 0.0:
            raise ConfigurationError(
                f"reach_km must be >= 0, got {self.reach_km}"
            )
        for cell in self.split:
            if cell in self.assignment:
                raise ConfigurationError(
                    f"cell {cell} is both assigned and split"
                )
        for shard in self._all_shard_ids():
            if not 0 <= shard < self.shard_count:
                raise ConfigurationError(
                    f"cell assigned to shard {shard}, "
                    f"but shard_count is {self.shard_count}"
                )

    def _all_shard_ids(self) -> list[int]:
        ids = [shard for shard in self.assignment.values()]
        for subcells in self.split.values():
            ids.extend(subcells.values())
        return ids

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def uniform(
        cls,
        shard_count: int,
        cell_km: float,
        city_km: float,
        reach_km: float = 0.0,
    ) -> "ShardPlan":
        """Stripe equal-width cell columns across ``shard_count`` shards."""
        if city_km <= 0.0:
            raise ConfigurationError(
                f"city_km must be positive, got {city_km}"
            )
        cells_per_axis = max(1, math.ceil(city_km / cell_km))
        assignment: dict[Cell, int] = {}
        for i in range(cells_per_axis):
            shard = min(shard_count - 1, i * shard_count // cells_per_axis)
            for j in range(cells_per_axis):
                assignment[(i, j)] = shard
        return cls(
            shard_count=shard_count,
            cell_km=cell_km,
            reach_km=reach_km,
            assignment=assignment,
        )

    @classmethod
    def from_density(
        cls,
        events: EventStream,
        shard_count: int,
        cell_km: float,
        reach_km: float = 0.0,
        hot_factor: float = 2.0,
    ) -> "ShardPlan":
        """Heterogeneity-aware plan from observed arrival density.

        Requests weigh 1.0 and workers 0.5 (requests drive matching
        work; workers mostly sit in the grid index).  Cells whose weight
        exceeds ``hot_factor`` times the mean are split into four
        half-size subcells so the balancing walk can cut *through* a
        hotspot instead of handing one shard the whole downtown.
        """
        if hot_factor <= 1.0:
            raise ConfigurationError(
                f"hot_factor must be > 1, got {hot_factor}"
            )
        weight: dict[Cell, float] = {}
        subweight: dict[Cell, dict[Cell, float]] = {}
        half = cell_km / 2.0
        for event in events:
            if event.kind is EventKind.REQUEST:
                assert event.request is not None
                point = event.request.location
                mass = 1.0
            else:
                assert event.worker is not None
                point = event.worker.location
                mass = 0.5
            cell = (
                math.floor(point.x / cell_km),
                math.floor(point.y / cell_km),
            )
            weight[cell] = weight.get(cell, 0.0) + mass
            sub = (math.floor(point.x / half), math.floor(point.y / half))
            per_cell = subweight.setdefault(cell, {})
            per_cell[sub] = per_cell.get(sub, 0.0) + mass
        if not weight:
            return cls.uniform(shard_count, cell_km, cell_km, reach_km)

        # Dense bounding box: every cell in the box becomes a region even
        # when empty, so clamped fallback lookups always resolve.
        min_i = min(cell[0] for cell in weight)
        max_i = max(cell[0] for cell in weight)
        min_j = min(cell[1] for cell in weight)
        max_j = max(cell[1] for cell in weight)
        mean = sum(weight.values()) / len(weight)
        hot_cutoff = hot_factor * mean

        # Regions in scan order: (base cell, subcell-or-None, weight).
        regions: list[tuple[Cell, Cell | None, float]] = []
        for i in range(min_i, max_i + 1):
            for j in range(min_j, max_j + 1):
                cell = (i, j)
                cell_weight = weight.get(cell, 0.0)
                if cell_weight > hot_cutoff:
                    per_cell = subweight.get(cell, {})
                    for sub in sorted(
                        (i * 2 + di, j * 2 + dj)
                        for di in (0, 1)
                        for dj in (0, 1)
                    ):
                        regions.append(
                            (cell, sub, per_cell.get(sub, 0.0))
                        )
                else:
                    regions.append((cell, None, cell_weight))

        total = sum(region[2] for region in regions)
        assignment: dict[Cell, int] = {}
        split: dict[Cell, dict[Cell, int]] = {}
        cumulative = 0.0
        for cell, sub, region_weight in regions:
            # Contiguous-band cut: the shard index grows with the
            # cumulative weight fraction at the region's midpoint.
            midpoint = cumulative + region_weight / 2.0
            fraction = midpoint / total if total > 0.0 else 0.0
            shard = min(shard_count - 1, int(fraction * shard_count))
            cumulative += region_weight
            if sub is None:
                assignment[cell] = shard
            else:
                split.setdefault(cell, {})[sub] = shard
        return cls(
            shard_count=shard_count,
            cell_km=cell_km,
            reach_km=reach_km,
            assignment=assignment,
            split=split,
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def _bounds(self) -> tuple[int, int, int, int] | None:
        cells = list(self.assignment) + list(self.split)
        if not cells:
            return None
        return (
            min(cell[0] for cell in cells),
            max(cell[0] for cell in cells),
            min(cell[1] for cell in cells),
            max(cell[1] for cell in cells),
        )

    def shard_of_cell(self, cell: Cell, point: Point | None = None) -> int:
        """Shard owning ``cell`` (``point`` refines split-cell lookups)."""
        subcells = self.split.get(cell)
        if subcells is not None:
            half = self.cell_km / 2.0
            if point is not None:
                sub = (
                    math.floor(point.x / half),
                    math.floor(point.y / half),
                )
                found = subcells.get(sub)
                if found is not None:
                    return found
            # Cell-granular queries (e.g. reach enumeration) take the
            # lowest shard; callers wanting every shard of a split cell
            # use shards_in_disk.
            return min(subcells.values())
        assigned = self.assignment.get(cell)
        if assigned is not None:
            return assigned
        return self._fallback_shard(cell)

    def _fallback_shard(self, cell: Cell) -> int:
        """Deterministic owner for a cell outside the planned area.

        Clamp into the planned bounding box first — arrivals just past
        the city edge belong with their nearest border shard.  A plan
        with no cells at all degrades to a mixed stripe.
        """
        bounds = self._bounds()
        if bounds is not None:
            min_i, max_i, min_j, max_j = bounds
            clamped = (
                min(max(cell[0], min_i), max_i),
                min(max(cell[1], min_j), max_j),
            )
            if clamped != cell:
                return self.shard_of_cell(clamped)
        mixed = (cell[0] * _MIX_X) ^ (cell[1] * _MIX_Y)
        return mixed % self.shard_count

    def shard_of(self, point: Point) -> int:
        """The shard that owns arrivals at ``point``."""
        cell = (
            math.floor(point.x / self.cell_km),
            math.floor(point.y / self.cell_km),
        )
        return self.shard_of_cell(cell, point)

    def shards_in_disk(self, center: Point, radius: float) -> list[int]:
        """Sorted shard ids whose cells intersect the given disk.

        Mirrors the ring enumeration of ``GridIndex.query_radius``: every
        base cell whose bounding square touches the disk contributes its
        shard (all subcell shards for split cells).
        """
        if radius < 0.0:
            raise ConfigurationError(f"radius must be >= 0, got {radius}")
        center_cell = (
            math.floor(center.x / self.cell_km),
            math.floor(center.y / self.cell_km),
        )
        reach = math.ceil(radius / self.cell_km)
        shards: set[int] = set()
        for di in range(-reach, reach + 1):
            for dj in range(-reach, reach + 1):
                cell = (center_cell[0] + di, center_cell[1] + dj)
                subcells = self.split.get(cell)
                if subcells is not None:
                    shards.update(subcells.values())
                    continue
                assigned = self.assignment.get(cell)
                if assigned is not None:
                    shards.add(assigned)
                else:
                    shards.add(self._fallback_shard(cell))
        return sorted(shards)

    def cells_of(self, shard_id: int) -> list[Cell]:
        """Sorted base cells with any area owned by ``shard_id``."""
        owned: set[Cell] = set()
        for cell in sorted(self.assignment):
            if self.assignment[cell] == shard_id:
                owned.add(cell)
        for cell in sorted(self.split):
            subcells = self.split[cell]
            for sub in sorted(subcells):
                if subcells[sub] == shard_id:
                    owned.add(cell)
        return sorted(owned)

    def shard_summary(self, shard_id: int) -> dict[str, object]:
        """Compact description of one shard's territory (for stats)."""
        cells = self.cells_of(shard_id)
        if cells:
            cell_range = [
                [min(cell[0] for cell in cells), min(cell[1] for cell in cells)],
                [max(cell[0] for cell in cells), max(cell[1] for cell in cells)],
            ]
        else:
            cell_range = []
        return {
            "shard": shard_id,
            "shards": self.shard_count,
            "cell_km": self.cell_km,
            "cells": len(cells),
            "cell_range": cell_range,
        }

    # ------------------------------------------------------------------
    # Wire codecs (kept field-symmetric; see WIRE001)
    # ------------------------------------------------------------------

    def as_dict(self) -> dict[str, object]:
        """JSON-safe encoding with deterministic key order."""
        return {
            "shard_count": self.shard_count,
            "cell_km": self.cell_km,
            "reach_km": self.reach_km,
            "assignment": {
                _cell_key(cell): self.assignment[cell]
                for cell in sorted(self.assignment)
            },
            "split": {
                _cell_key(cell): {
                    _cell_key(sub): self.split[cell][sub]
                    for sub in sorted(self.split[cell])
                }
                for cell in sorted(self.split)
            },
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "ShardPlan":
        """Inverse of :meth:`as_dict`."""
        assignment_raw = payload["assignment"]
        split_raw = payload["split"]
        if not isinstance(assignment_raw, dict) or not isinstance(
            split_raw, dict
        ):
            raise ConfigurationError("malformed shard plan payload")
        return cls(
            shard_count=int(payload["shard_count"]),  # type: ignore[call-overload]
            cell_km=float(payload["cell_km"]),  # type: ignore[arg-type]
            reach_km=float(payload["reach_km"]),  # type: ignore[arg-type]
            assignment={
                _key_cell(key): int(value)
                for key, value in sorted(assignment_raw.items())
            },
            split={
                _key_cell(key): {
                    _key_cell(sub): int(value)
                    for sub, value in sorted(subcells.items())
                }
                for key, subcells in sorted(split_raw.items())
            },
        )


def reach_from_events(events: EventStream) -> float:
    """The largest worker service radius in a scenario's event stream.

    This is the cooperation reach the router must honour: a request
    rejected by its home shard may still be servable by a worker homed
    on any shard whose cells fall within this distance.
    """
    radii = [worker.service_radius for worker in events.workers]
    return max(radii) if radii else 0.0
