"""Verified replay of merged cluster recordings.

A cluster recording (:mod:`repro.cluster.recording`) annotates every
canonical event with its shard, so replay does not need to re-run the
router's forwarding logic — the recording already *is* the routing
decision.  :func:`replay_cluster_log` splits the merged stream back into
per-shard substreams, re-drives each through a fresh shard gateway
(worker/decision arrivals and recorded sheds, exactly like the
single-gateway replay), merges the regenerated streams with the same
deterministic key, and checks the cluster-wide identities:

1. **stream** — the regenerated merged stream's canonical projection
   equals the recorded one, byte for byte;
2. **row** — the regenerated cluster metric row's digest equals the one
   sealed in the recording's final cluster ``drain`` event;
3. **meta** — the recording describes this deployment (schema,
   algorithm, scenario, platforms, shard count and plan); a mismatch
   raises :class:`~repro.errors.ServiceError` instead of diverging.

Shards are independent state machines, so the replay drives them one at
a time on their own virtual clocks — the merged order restricted to one
shard is that shard's original submission order.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.cluster.plan import ShardPlan
from repro.cluster.recording import (
    cluster_meta_of,
    final_statuses_of,
    merge_shard_streams,
    shard_streams_of,
)
from repro.cluster.router import merge_rows
from repro.core.simulator import Scenario, SimulatorConfig
from repro.errors import ServiceError
from repro.obs.events import (
    CANONICAL_KINDS,
    EVENT_SCHEMA,
    EventLog,
    GatewayEvent,
    canonical_projection,
    read_events,
    row_digest,
)
from repro.service.clock import VirtualClock
from repro.service.gateway import MatchingGateway
from repro.service.wire import request_from_wire, worker_from_wire

__all__ = ["ClusterReplayReport", "replay_cluster_log"]


@dataclass(frozen=True, slots=True)
class ClusterReplayReport:
    """What a cluster replay drove and which identities held."""

    shards: int
    recorded_events: int
    canonical_events: int
    workers: int
    requests: int
    sheds: int
    #: Crash markers observed in the recorded stream (ops ``crash``).
    crashes_recorded: int
    stream_identical: bool
    row_identical: bool
    metrics_row: dict

    @property
    def verified(self) -> bool:
        """Every byte-identity held."""
        return self.stream_identical and self.row_identical

    def as_dict(self) -> dict:
        return {
            "shards": self.shards,
            "recorded_events": self.recorded_events,
            "canonical_events": self.canonical_events,
            "workers": self.workers,
            "requests": self.requests,
            "sheds": self.sheds,
            "crashes_recorded": self.crashes_recorded,
            "stream_identical": self.stream_identical,
            "row_identical": self.row_identical,
            "verified": self.verified,
        }


def _validate_meta(
    meta: GatewayEvent,
    scenario: Scenario,
    algorithm: str,
    path: Path,
) -> int:
    """Check the recording describes this deployment; returns shard count."""
    from repro.core.registry import algorithm_factory

    recorded = {
        "schema": meta.fields.get("schema"),
        "algorithm": meta.fields.get("algorithm"),
        "scenario": meta.fields.get("scenario"),
        "platforms": meta.fields.get("platforms"),
    }
    expected = {
        "schema": EVENT_SCHEMA,
        "algorithm": algorithm_factory(algorithm).name,
        "scenario": scenario.name,
        "platforms": list(scenario.platform_ids),
    }
    if recorded != expected:
        raise ServiceError(
            f"{path}: stream meta {recorded!r} does not match the replay "
            f"deployment {expected!r} — wrong scenario/algorithm for this "
            f"recording"
        )
    shards = meta.fields.get("shards")
    if shards is None:
        raise ServiceError(
            f"{path}: stream meta has no shard count — a single-gateway "
            "recording replays through repro.service.replay instead"
        )
    return int(shards)  # type: ignore[call-overload]


async def _replay_shard(
    substream: list[GatewayEvent],
    scenario: Scenario,
    algorithm: str,
    config: SimulatorConfig,
) -> tuple[list[GatewayEvent], dict, tuple[int, int, int]]:
    """Re-drive one shard's substream; returns (stream, row, counts)."""
    log = EventLog(ring=0)
    clock = VirtualClock()
    gateway = MatchingGateway(
        scenario, algorithm, config, clock=clock, events=log
    )
    workers = requests = sheds = 0
    await gateway.start()
    try:
        for event in substream:
            if event.kind == "worker":
                worker = worker_from_wire(event.fields["worker"])
                clock.advance_to(worker.arrival_time)
                workers += 1
                await gateway.submit_worker(worker)
            elif event.kind == "decision":
                request = request_from_wire(event.fields["request"])
                clock.advance_to(request.arrival_time)
                requests += 1
                await gateway.submit_request(request)
            elif event.kind == "shed":
                request = request_from_wire(event.fields["request"])
                clock.advance_to(request.arrival_time)
                sheds += 1
                await gateway.replay_shed(request)
        await gateway.drain()
    finally:
        if gateway.running:
            await gateway.stop()
    return list(log.events()), gateway.metrics_dict(), (
        workers,
        requests,
        sheds,
    )


async def replay_cluster_log(
    path: str | Path,
    scenario: Scenario,
    algorithm: str = "ramcom",
    config: SimulatorConfig | None = None,
) -> ClusterReplayReport:
    """Re-drive a merged cluster recording and report the identities.

    The scenario/algorithm/config must be the ones the recording ran;
    the shard plan is rebuilt from the recording's own meta event, so
    the caller never has to reconstruct the topology by hand.
    """
    path = Path(path)
    recorded = read_events(path)
    meta = cluster_meta_of(recorded)
    shard_count = _validate_meta(meta, scenario, algorithm, path)
    plan_payload = meta.fields.get("plan")
    if not isinstance(plan_payload, dict):
        raise ServiceError(f"{path}: cluster meta carries no shard plan")
    plan = ShardPlan.from_dict(plan_payload)
    if plan.shard_count != shard_count:
        raise ServiceError(
            f"{path}: meta says {shard_count} shards but the embedded "
            f"plan has {plan.shard_count}"
        )

    substreams = shard_streams_of(recorded, shard_count)
    replayed_streams: list[list[GatewayEvent]] = []
    replayed_rows: list[dict] = []
    workers = requests = sheds = 0
    for substream in substreams:
        stream, row, counts = await _replay_shard(
            substream, scenario, algorithm, config or SimulatorConfig()
        )
        replayed_streams.append(stream)
        replayed_rows.append(row)
        workers += counts[0]
        requests += counts[1]
        sheds += counts[2]

    statuses = final_statuses_of(recorded)
    cluster_row = merge_rows(replayed_rows, statuses)
    merged = merge_shard_streams(replayed_streams, plan, cluster_row)

    recorded_canonical = [
        event for event in recorded if event.kind in CANONICAL_KINDS
    ]
    stream_identical = canonical_projection(merged) == canonical_projection(
        recorded_canonical
    )
    cluster_drain = next(
        (
            event
            for event in reversed(recorded)
            if event.kind == "drain" and "shards" in event.fields
        ),
        None,
    )
    row_identical = cluster_drain is not None and row_digest(
        cluster_row
    ) == cluster_drain.fields.get("metrics_sha256")

    return ClusterReplayReport(
        shards=shard_count,
        recorded_events=len(recorded),
        canonical_events=len(recorded_canonical),
        workers=workers,
        requests=requests,
        sheds=sheds,
        crashes_recorded=sum(
            1 for event in recorded if event.kind == "crash"
        ),
        stream_identical=stream_identical,
        row_identical=row_identical,
        metrics_row=cluster_row,
    )
