"""Command-line interface: ``python -m repro`` / ``com-repro``.

Subcommands regenerate the paper's experiments from a terminal:

* ``table V|VI|VII`` — one city-pair comparison table;
* ``figure <axis> <metric>`` — one Fig.-5 panel;
* ``cr <algorithm>`` — a competitive-ratio study on a small instance;
* ``chaos`` — a fault-injection sweep (docs/RESILIENCE.md);
* ``trace`` — run one scenario with full telemetry and write
  ``trace.jsonl`` / ``trace.chrome.json`` / ``metrics.json``
  (docs/OBSERVABILITY.md);
* ``bench`` — the hot-path performance benchmark (docs/PERFORMANCE.md);
* ``lint`` — run the ``comlint`` project-invariant static analyzer
  (docs/STATIC_ANALYSIS.md);
* ``serve`` — run the matching engine as a long-lived JSONL/TCP service
  (docs/SERVICE.md);
* ``replay-serve`` — replay a trace through an ephemeral service under
  the virtual clock; ``--verify`` asserts byte-identity with the batch
  simulator;
* ``replay-events`` — re-drive a recorded ``COMEVT1`` event log and
  verify the canonical stream and metrics row reproduce byte-identically
  (docs/DASHBOARD.md);
* ``quickstart`` — a tiny end-to-end demo run;
* ``datasets`` — the simulated Table-III statistics.

Experiment subcommands accept ``--jobs N`` to fan seed x algorithm cells
across a process pool (:class:`repro.experiments.parallel.ParallelRunner`);
output is byte-identical to the serial run.
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__
from repro.experiments.harness import ExperimentConfig
from repro.experiments.tables import TABLE_IDS, run_city_table
from repro.experiments.figures import run_figure5_panel
from repro.utils.tables import TextTable

__all__ = ["main", "build_parser"]

# Defaults shared by several subcommands (argparse defaults and the
# hard-coded configs of demo commands must agree — keep them in one place).
DEFAULT_SERVICE_DURATION = 1800.0
DEFAULT_CITY_KM = 8.0
DEFAULT_DEMO_REQUESTS = 400
DEFAULT_DEMO_WORKERS = 100
DEFAULT_SWEEP_REQUESTS = 600
DEFAULT_SWEEP_WORKERS = 160


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for seed x algorithm cells (0 = one per "
            "CPU); results are byte-identical to --jobs 1"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for the docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="com-repro",
        description=(
            "Cross Online Matching (COM) reproduction — regenerate the "
            "tables and figures of Cheng et al., ICDE 2020."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    table = subparsers.add_parser("table", help="regenerate Table V/VI/VII")
    table.add_argument("table_id", choices=sorted(TABLE_IDS), help="paper table id")
    table.add_argument("--scale", type=float, default=0.02)
    table.add_argument("--seeds", type=int, default=3, help="seed-days to average")
    table.add_argument(
        "--service-duration", type=float, default=DEFAULT_SERVICE_DURATION
    )
    table.add_argument(
        "--output", type=str, default=None, help="directory to save JSON results"
    )
    _add_jobs_flag(table)

    figure = subparsers.add_parser("figure", help="regenerate one Fig. 5 panel")
    figure.add_argument("axis", choices=["requests", "workers", "radius"])
    figure.add_argument(
        "metric", choices=["revenue", "time", "memory", "acceptance"]
    )
    figure.add_argument(
        "--values",
        type=str,
        default=None,
        help="comma-separated sweep values (default: a reduced Table-IV grid)",
    )
    figure.add_argument("--seeds", type=int, default=2)
    figure.add_argument(
        "--output", type=str, default=None, help="directory to save CSV results"
    )
    figure.add_argument(
        "--chart", action="store_true", help="also render an ASCII chart"
    )
    _add_jobs_flag(figure)

    cr = subparsers.add_parser("cr", help="competitive-ratio study")
    cr.add_argument("algorithm", help="algorithm name (demcom, ramcom, tota, ...)")
    cr.add_argument(
        "--model", choices=["adversarial", "random-order"], default="random-order"
    )
    cr.add_argument("--trials", type=int, default=50)

    chaos = subparsers.add_parser(
        "chaos", help="fault-injection sweep: revenue degradation vs fault rate"
    )
    chaos.add_argument(
        "--rates",
        type=str,
        default="0,0.2,0.4,0.6,0.8",
        help="comma-separated fault rates in [0, 1]",
    )
    chaos.add_argument(
        "--algorithms",
        type=str,
        default="demcom,ramcom",
        help="comma-separated registry names",
    )
    chaos.add_argument("--seeds", type=int, default=2)
    chaos.add_argument("--fault-seed", type=int, default=0)
    chaos.add_argument("--requests", type=int, default=DEFAULT_SWEEP_REQUESTS)
    chaos.add_argument("--workers", type=int, default=DEFAULT_SWEEP_WORKERS)
    chaos.add_argument(
        "--output", type=str, default=None, help="directory to save JSON results"
    )
    _add_jobs_flag(chaos)

    trace = subparsers.add_parser(
        "trace",
        help=(
            "run one scenario with telemetry enabled; write trace.jsonl, "
            "trace.chrome.json (open in Perfetto) and metrics.json"
        ),
    )
    trace.add_argument(
        "--algorithm", default="ramcom", help="registry name (default: ramcom)"
    )
    trace.add_argument("--requests", type=int, default=DEFAULT_DEMO_REQUESTS)
    trace.add_argument("--workers", type=int, default=DEFAULT_DEMO_WORKERS)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="also inject faults (FaultPlan.uniform) to trace the resilience path",
    )
    trace.add_argument(
        "--output", type=str, default="results/trace", help="artifact directory"
    )
    trace.add_argument(
        "--no-wall",
        action="store_true",
        help=(
            "omit wall-clock fields: the trace becomes a deterministic "
            "function of (scenario, seed)"
        ),
    )

    sensitivity = subparsers.add_parser(
        "sensitivity", help="calibration sensitivity study"
    )
    sensitivity.add_argument(
        "parameter",
        choices=["going-rate", "jitter", "skew", "occupation"],
    )
    sensitivity.add_argument("--seeds", type=int, default=2)
    _add_jobs_flag(sensitivity)

    ablation = subparsers.add_parser("ablation", help="design-choice ablation")
    ablation.add_argument(
        "study",
        choices=["cooperation", "ramcom-k", "payment-accuracy", "pricer"],
    )
    ablation.add_argument("--seeds", type=int, default=2)
    _add_jobs_flag(ablation)

    bench = subparsers.add_parser(
        "bench",
        help=(
            "hot-path benchmark: Algorithm-2 fast path vs its reference "
            "baseline, plus the parallel executor (docs/PERFORMANCE.md)"
        ),
    )
    bench.add_argument(
        "--full", action="store_true", help="full sizes (default: quick)"
    )
    bench.add_argument(
        "--service",
        action="store_true",
        help=(
            "benchmark the serving layer instead: gateway, journaled "
            "gateway and TCP throughput plus the journal-overhead gate "
            "(docs/SERVICE.md)"
        ),
    )
    bench.add_argument(
        "--cluster",
        action="store_true",
        help=(
            "benchmark the sharded cluster instead: routed throughput at "
            "1/2/4/8 shards with the scaling-ratio gate (docs/CLUSTER.md)"
        ),
    )
    bench.add_argument(
        "--output", type=str, default=None, help="write the JSON payload here"
    )
    bench.add_argument(
        "--check",
        type=str,
        default=None,
        help="compare against this reference JSON (BENCH_hotpath.json, "
        "BENCH_service.json with --service, or BENCH_cluster.json with "
        "--cluster); exit 1 on regression",
    )
    _add_jobs_flag(bench)
    bench.set_defaults(jobs=0)

    reproduce = subparsers.add_parser(
        "reproduce", help="run every table/figure/CR study, write REPORT.md"
    )
    reproduce.add_argument("--output", type=str, default="results")
    reproduce.add_argument("--scale", type=float, default=0.01)
    reproduce.add_argument("--seeds", type=int, default=2)
    reproduce.add_argument("--full-grids", action="store_true")

    lint = subparsers.add_parser(
        "lint",
        help=(
            "comlint: enforce project invariants (determinism, telemetry "
            "budget, error hygiene, API hygiene) over python sources"
        ),
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format",
        dest="report_format",
        choices=["text", "json"],
        default="text",
    )
    lint.add_argument(
        "--baseline",
        type=str,
        default="comlint.baseline.json",
        help="accepted-violation file (default: comlint.baseline.json)",
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="accept every current finding into the baseline and exit 0",
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="fail on baselined findings too, not just new ones",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    lint.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "lint files across N worker processes (0 = one per CPU); the "
            "merged report is byte-identical to a serial run"
        ),
    )

    def _add_service_scenario_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--algorithm", default="ramcom", help="registry name (default: ramcom)"
        )
        sub.add_argument(
            "--scenario",
            type=str,
            default=None,
            help="scenario JSON (from workloads.save_scenario); default: synthetic",
        )
        sub.add_argument("--requests", type=int, default=DEFAULT_DEMO_REQUESTS)
        sub.add_argument("--workers", type=int, default=DEFAULT_DEMO_WORKERS)
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument(
            "--service-duration", type=float, default=DEFAULT_SERVICE_DURATION
        )
        sub.add_argument(
            "--payment-backend",
            choices=["auto", "numpy", "python"],
            default="python",
            help=(
                "Algorithm-2 / MER pricing backend (default: python; "
                "docs/PERFORMANCE.md#the-array-backend).  Overridable via "
                "REPRO_PAYMENT_BACKEND."
            ),
        )
        sub.add_argument(
            "--batch",
            type=int,
            default=1,
            metavar="N",
            help=(
                "micro-batched dispatch: drain up to N queued jobs per "
                "decision-loop wakeup and speculate their incentive "
                "results in one kernel call (default: 1 = off; outcomes "
                "are identical either way, see docs/SERVICE.md)"
            ),
        )
        sub.add_argument(
            "--batch-linger-ms",
            type=float,
            default=0.0,
            help=(
                "with --batch, wait up to this long for more jobs before "
                "processing a short batch (default: 0)"
            ),
        )

    serve = subparsers.add_parser(
        "serve",
        help=(
            "run the matching engine as a long-lived JSONL/TCP service "
            "(docs/SERVICE.md)"
        ),
    )
    _add_service_scenario_flags(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="TCP port (0 = ephemeral, printed)"
    )
    serve.add_argument(
        "--real-time",
        action="store_true",
        help="stamp arrivals with a wall clock instead of the virtual clock",
    )
    serve.add_argument(
        "--speed",
        type=float,
        default=1.0,
        help="real-time clock speed-up factor (with --real-time)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        help="admission bound: shed requests beyond this queue depth (0 = off)",
    )
    serve.add_argument(
        "--restore",
        type=str,
        default=None,
        help="boot from a snapshot file instead of a fresh scenario",
    )
    serve.add_argument(
        "--journal",
        type=str,
        default=None,
        help=(
            "directory for the COMWAL1 write-ahead journal; if it already "
            "holds a checkpoint the gateway auto-recovers the pre-crash "
            "state (docs/RESILIENCE.md)"
        ),
    )
    serve.add_argument(
        "--fsync",
        choices=["always", "interval", "never"],
        default="interval",
        help="journal fsync policy (default: interval)",
    )
    serve.add_argument(
        "--fsync-interval",
        type=int,
        default=256,
        help="records between fsyncs under --fsync interval (default: 256)",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=4096,
        help="journal records between COMSNAP1 checkpoints (default: 4096)",
    )
    serve.add_argument(
        "--events",
        type=str,
        default=None,
        help=(
            "record a COMEVT1 event log at this path (replayable with "
            "replay-events --verify; resumed across restarts under "
            "--journal recovery)"
        ),
    )
    serve.add_argument(
        "--dashboard",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "serve the live HTTP+SSE ops dashboard on this port "
            "(0 = ephemeral, printed; docs/DASHBOARD.md)"
        ),
    )
    serve.add_argument(
        "--dashboard-cell-km",
        type=float,
        default=1.0,
        help="heatmap grid resolution in km (default: 1.0)",
    )
    serve.add_argument(
        "--sanitize-concurrency",
        action="store_true",
        help=(
            "enable the runtime concurrency sanitizer: ownership guards "
            "on decision-loop-owned state plus the event-loop stall "
            "detector (docs/STATIC_ANALYSIS.md)"
        ),
    )

    replay = subparsers.add_parser(
        "replay-serve",
        help=(
            "replay a trace through an ephemeral service under the virtual "
            "clock; --verify asserts byte-identity with the batch simulator"
        ),
    )
    _add_service_scenario_flags(replay)
    replay.add_argument(
        "--verify",
        action="store_true",
        help=(
            "also run Simulator.run on the same scenario and fail unless "
            "the metric rows are byte-identical"
        ),
    )
    replay.add_argument(
        "--snapshot-at",
        type=int,
        default=None,
        help=(
            "checkpoint after this many events, restore into a second "
            "gateway, and finish the stream from the snapshot (recovery "
            "drill; composes with --verify)"
        ),
    )
    replay.add_argument(
        "--output", type=str, default=None, help="write the metrics JSON here"
    )

    replay_events = subparsers.add_parser(
        "replay-events",
        help=(
            "re-drive a recorded COMEVT1 event log through the engine; "
            "--verify fails unless the canonical stream and metrics row "
            "reproduce byte-identically (docs/DASHBOARD.md)"
        ),
    )
    _add_service_scenario_flags(replay_events)
    replay_events.add_argument(
        "--log",
        type=str,
        required=True,
        help="the recorded .comevt stream (from serve --events or soak)",
    )
    replay_events.add_argument(
        "--tcp",
        action="store_true",
        help=(
            "route the replay through a loopback JSONL/TCP server instead "
            "of the in-process gateway (adds wire-codec coverage)"
        ),
    )
    replay_events.add_argument(
        "--verify",
        action="store_true",
        help="exit non-zero unless every byte-identity held",
    )
    replay_events.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "replay a merged cluster recording through this many shard "
            "gateways (must match the recording's meta; default: 1 = "
            "single-gateway stream)"
        ),
    )
    replay_events.add_argument(
        "--output", type=str, default=None, help="write the replay report here"
    )

    soak = subparsers.add_parser(
        "soak",
        help=(
            "chaos soak: journaled service under load, killed and "
            "recovered repeatedly; fails unless the final metrics row is "
            "byte-identical to an uninterrupted run (docs/RESILIENCE.md)"
        ),
    )
    _add_service_scenario_flags(soak)
    soak.add_argument(
        "--cycles",
        type=int,
        default=3,
        help="crash->recover cycles to induce (default: 3)",
    )
    soak.add_argument(
        "--soak-seed",
        type=int,
        default=0,
        help="seed for the kill-point draw (independent of --seed)",
    )
    soak.add_argument(
        "--speed",
        type=float,
        default=0.0,
        help=(
            "real-time clock compression: trace seconds per wall second "
            "(0 = unthrottled, the default)"
        ),
    )
    soak.add_argument(
        "--fsync",
        choices=["always", "interval", "never"],
        default="interval",
        help="journal fsync policy under test (default: interval)",
    )
    soak.add_argument(
        "--directory",
        type=str,
        default=None,
        help="journal directory (default: a fresh temporary directory)",
    )
    soak.add_argument(
        "--no-events",
        action="store_true",
        help=(
            "skip recording + replay-verifying the COMEVT1 event stream "
            "(recorded and verified by default)"
        ),
    )
    soak.add_argument(
        "--output", type=str, default=None, help="write the JSON report here"
    )

    def _add_cluster_topology_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--shards",
            type=int,
            default=4,
            help="shard gateway count (default: 4)",
        )
        sub.add_argument(
            "--cell-km",
            type=float,
            default=2.0,
            help="shard plan grid cell edge in km (default: 2.0)",
        )
        sub.add_argument(
            "--hetero",
            action="store_true",
            help=(
                "heterogeneity-aware plan: split hot cells into half-size "
                "subcells from the trace's arrival density instead of "
                "uniform column stripes (docs/CLUSTER.md#shard-plans)"
            ),
        )

    serve_cluster = subparsers.add_parser(
        "serve-cluster",
        help=(
            "run an N-shard gateway cluster behind one JSONL/TCP front "
            "door with spatial routing (docs/CLUSTER.md)"
        ),
    )
    _add_service_scenario_flags(serve_cluster)
    _add_cluster_topology_flags(serve_cluster)
    serve_cluster.add_argument("--host", default="127.0.0.1")
    serve_cluster.add_argument(
        "--port",
        type=int,
        default=0,
        help="front-door TCP port (0 = ephemeral, printed)",
    )
    serve_cluster.add_argument(
        "--shard-base-port",
        type=int,
        default=0,
        help=(
            "shard k's own JSONL server listens on base+k "
            "(default: 0 = ephemeral ports, printed)"
        ),
    )
    serve_cluster.add_argument(
        "--journal-root",
        type=str,
        default=None,
        help=(
            "arm per-shard COMWAL1 journals under this directory "
            "(<root>/shard-<k>; default: unjournaled)"
        ),
    )
    serve_cluster.add_argument(
        "--record",
        type=str,
        default=None,
        help=(
            "write the merged cluster-ordered COMEVT1 recording here at "
            "drain (replayable with replay-events --shards N --verify)"
        ),
    )

    replay_cluster = subparsers.add_parser(
        "replay-cluster",
        help=(
            "route the trace through an ephemeral N-shard cluster under "
            "the virtual clock, record the merged stream, and --verify "
            "its byte-identical replay (docs/CLUSTER.md)"
        ),
    )
    _add_service_scenario_flags(replay_cluster)
    _add_cluster_topology_flags(replay_cluster)
    replay_cluster.add_argument(
        "--tcp",
        action="store_true",
        help=(
            "put every shard behind its own loopback JSONL server and "
            "route through GatewayClient (adds wire + reconnect coverage)"
        ),
    )
    replay_cluster.add_argument(
        "--record",
        type=str,
        default=None,
        help="write the merged recording here (default: temporary file)",
    )
    replay_cluster.add_argument(
        "--verify",
        action="store_true",
        help=(
            "re-drive the merged recording through a fresh cluster and "
            "fail unless the canonical stream and cluster row reproduce "
            "byte-identically (skipped when a crash is induced)"
        ),
    )
    replay_cluster.add_argument(
        "--crash-shard",
        type=int,
        default=None,
        metavar="K",
        help=(
            "induce a fail-stop on shard K mid-stream and require the "
            "router to fail over to the survivors (exit 1 otherwise)"
        ),
    )
    replay_cluster.add_argument(
        "--crash-index",
        type=int,
        default=16,
        help="kill-point boundary index on the crashed shard (default: 16)",
    )
    replay_cluster.add_argument(
        "--crash-channel",
        choices=["journal_append", "journal_torn", "checkpoint", "ack"],
        default="ack",
        help="crash channel for --crash-shard (default: ack)",
    )
    replay_cluster.add_argument(
        "--output", type=str, default=None, help="write the report JSON here"
    )

    subparsers.add_parser("quickstart", help="tiny end-to-end demo")
    subparsers.add_parser("datasets", help="simulated Table III statistics")
    subparsers.add_parser("algorithms", help="list registered algorithms")
    return parser


def _cmd_table(args: argparse.Namespace) -> int:
    config = ExperimentConfig(
        seeds=tuple(range(args.seeds)),
        service_duration=args.service_duration,
        jobs=args.jobs,
    )
    result = run_city_table(args.table_id, scale=args.scale, config=config)
    print(result.render())
    if args.output:
        from repro.experiments.reporting import save_table

        path = save_table(result, args.output)
        print(f"saved: {path}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    values = None
    if args.values:
        parsed = [float(v) for v in args.values.split(",")]
        values = tuple(int(v) if v.is_integer() and v >= 10 else v for v in parsed)
    else:
        # A reduced default grid keeps the CLI interactive; EXPERIMENTS.md
        # records the full-grid runs.
        reduced = {
            "requests": (500, 1000, 2500, 5000, 10_000),
            "workers": (100, 200, 500, 1000, 2500),
            "radius": (0.5, 1.0, 1.5, 2.0, 2.5),
        }
        values = reduced[args.axis]
    config = ExperimentConfig(seeds=tuple(range(args.seeds)), jobs=args.jobs)
    panel = run_figure5_panel(args.axis, args.metric, values=values, config=config)
    print(panel.render())
    if args.chart:
        from repro.utils.ascii_chart import render_panel

        print()
        print(render_panel(panel))
    if args.output:
        from repro.experiments.reporting import save_panel

        path = save_panel(panel, args.output)
        print(f"saved: {path}")
    return 0


def _cmd_cr(args: argparse.Namespace) -> int:
    from repro.experiments.competitive import (
        RAMCOM_THEORETICAL_CR,
        adversarial_ratio,
        random_order_ratio,
    )
    from repro.workloads.synthetic import SyntheticWorkload, SyntheticWorkloadConfig

    if args.model == "adversarial":
        scenario = SyntheticWorkload(
            SyntheticWorkloadConfig(
                request_count=4, worker_count=4, city_km=2.0, radius_km=2.0
            )
        ).build(seed=3)
        report = adversarial_ratio(scenario, args.algorithm)
    else:
        scenario = SyntheticWorkload(
            SyntheticWorkloadConfig(
                request_count=40, worker_count=16, city_km=4.0, radius_km=1.5
            )
        ).build(seed=3)
        report = random_order_ratio(scenario, args.algorithm, trials=args.trials)
    table = TextTable(
        ["Model", "Orders", "Min ratio", "Mean ratio", "1/(8e) bound"],
        title=f"Competitive ratio — {args.algorithm}",
    )
    table.add_row(
        [
            report.model,
            report.orders_evaluated,
            report.minimum,
            report.expectation,
            RAMCOM_THEORETICAL_CR,
        ]
    )
    print(table.render())
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.experiments.chaos import run_fault_sweep
    from repro.workloads.synthetic import SyntheticWorkload, SyntheticWorkloadConfig

    rates = tuple(float(rate) for rate in args.rates.split(","))
    algorithms = tuple(
        name.strip() for name in args.algorithms.split(",") if name.strip()
    )
    scenario = SyntheticWorkload(
        SyntheticWorkloadConfig(
            request_count=args.requests,
            worker_count=args.workers,
            city_km=DEFAULT_CITY_KM,
        )
    ).build(seed=1)
    config = ExperimentConfig(seeds=tuple(range(args.seeds)), jobs=args.jobs)
    result = run_fault_sweep(
        scenario,
        algorithms=algorithms,
        rates=rates,
        config=config,
        fault_seed=args.fault_seed,
    )
    print(result.render())
    if args.output:
        from repro.experiments.reporting import save_chaos

        path = save_chaos(result, args.output)
        print(f"saved: {path}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.core import Simulator, SimulatorConfig
    from repro.core.registry import algorithm_factory
    from repro.faults.plan import FaultPlan
    from repro.obs import Telemetry
    from repro.workloads.synthetic import SyntheticWorkload, SyntheticWorkloadConfig

    scenario = SyntheticWorkload(
        SyntheticWorkloadConfig(
            request_count=args.requests,
            worker_count=args.workers,
            city_km=DEFAULT_CITY_KM,
        )
    ).build(seed=args.seed)
    telemetry = Telemetry(tracing=True, wall_clock=not args.no_wall)
    fault_plan = (
        FaultPlan.uniform(args.fault_rate) if args.fault_rate > 0.0 else None
    )
    config = SimulatorConfig(
        seed=args.seed,
        telemetry=telemetry,
        fault_plan=fault_plan,
        worker_reentry=True,
        service_duration=DEFAULT_SERVICE_DURATION,
    )
    result = Simulator(config).run(scenario, algorithm_factory(args.algorithm))
    paths = telemetry.write_trace(args.output)

    summary = result.telemetry
    assert summary is not None
    table = TextTable(
        ["Span", "Count"],
        title=(
            f"Trace — {result.algorithm_name} on {scenario.name} "
            f"(seed {args.seed})"
        ),
    )
    for name, count in summary.span_counts.items():
        table.add_row([name, count])
    print(table.render())
    decisions = sum(
        entry["value"]
        for entry in summary.metrics.counters.get("decisions_total", [])
    )
    print(
        f"decisions: {decisions:.0f}  revenue: {result.total_revenue:.0f}  "
        f"mean response: {result.mean_response_time_ms:.3f} ms"
    )
    for artifact, path in paths.items():
        print(f"{artifact}: {path}")
    print("open trace.chrome.json at https://ui.perfetto.dev")
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.experiments import sensitivity as module

    functions = {
        "going-rate": module.going_rate_sensitivity,
        "jitter": module.jitter_sensitivity,
        "skew": module.skew_sensitivity,
        "occupation": module.occupation_sensitivity,
    }
    config = ExperimentConfig(seeds=tuple(range(args.seeds)), jobs=args.jobs)
    result = functions[args.parameter](config=config)
    print(result.render())
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    from repro.experiments import ablation as module
    from repro.workloads import SyntheticWorkload, SyntheticWorkloadConfig

    functions = {
        "cooperation": module.run_cooperation_ablation,
        "ramcom-k": module.run_ramcom_k_sweep,
        "payment-accuracy": module.run_payment_accuracy_ablation,
        "pricer": module.run_pricer_breakpoint_ablation,
    }
    scenario = SyntheticWorkload(
        SyntheticWorkloadConfig(
            request_count=DEFAULT_SWEEP_REQUESTS,
            worker_count=DEFAULT_SWEEP_WORKERS,
            city_km=DEFAULT_CITY_KM,
        )
    ).build(seed=1)
    config = ExperimentConfig(seeds=tuple(range(args.seeds)), jobs=args.jobs)
    result = functions[args.study](scenario, config)
    print(result.render())
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments.full_run import reproduce_all

    run = reproduce_all(
        args.output,
        scale=args.scale,
        seeds=args.seeds,
        full_grids=args.full_grids,
    )
    print(f"report: {run.report_path}")
    print(
        f"{len(run.tables)} tables, {len(run.panels)} figure panels, "
        f"{len(run.cr_rows)} CR rows in {run.elapsed_seconds:.1f}s"
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    if getattr(args, "cluster", False):
        from repro.experiments.cluster_bench import (
            check_cluster_regression as check_regression,
            render_cluster_report as render_report,
            run_cluster_benchmark,
        )

        payload = run_cluster_benchmark(quick=not args.full)
    elif args.service:
        from repro.experiments.service_bench import (
            check_service_regression as check_regression,
            render_service_report as render_report,
        )
        from repro.experiments.service_bench import run_service_benchmark

        payload = run_service_benchmark(quick=not args.full)
    else:
        from repro.experiments.benchmark import (
            check_regression,
            render_report,
            run_hotpath_benchmark,
        )

        payload = run_hotpath_benchmark(quick=not args.full, jobs=args.jobs)
    print(render_report(payload))
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"saved: {args.output}")
    if args.check:
        failures = check_regression(payload, args.check)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        if getattr(args, "cluster", False):
            what = "cluster scaling"
        elif args.service:
            what = "journal/event overhead"
        else:
            what = "speedups"
        print(f"OK: {what} within tolerance of {args.check}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import (
        Baseline,
        lint_paths,
        partition_violations,
        render_json,
        render_rule_catalogue,
        render_text,
    )

    if args.list_rules:
        print(render_rule_catalogue())
        return 0

    root = Path.cwd()
    violations = lint_paths(
        [Path(path) for path in args.paths], root=root, jobs=args.jobs
    )
    baseline_path = Path(args.baseline)
    if args.update_baseline:
        Baseline.from_violations(violations).save(baseline_path)
        print(
            f"baseline updated: {len(violations)} accepted finding(s) "
            f"-> {baseline_path}"
        )
        return 0

    baseline = Baseline.load(baseline_path)
    new, baselined = partition_violations(violations, baseline)
    failing = violations if args.strict else new
    if args.report_format == "json":
        print(render_json(new, baselined))
    else:
        print(render_text(new, baselined))
        if args.strict and baselined:
            print(f"strict mode: {len(baselined)} baselined finding(s) fail too")
    return 1 if failing else 0


def _service_scenario(args: argparse.Namespace):
    """The scenario a ``serve``/``replay-serve`` invocation operates on."""
    if args.scenario:
        from repro.workloads import load_scenario

        return load_scenario(args.scenario)
    from repro.workloads.synthetic import SyntheticWorkload, SyntheticWorkloadConfig

    return SyntheticWorkload(
        SyntheticWorkloadConfig(
            request_count=args.requests,
            worker_count=args.workers,
            city_km=DEFAULT_CITY_KM,
        )
    ).build(seed=args.seed)


def _service_config(args: argparse.Namespace):
    """Simulator config for the service commands.

    Response times are not measured: the service layer reports its own
    end-to-end latency histogram, and dropping the engine-side wall-clock
    read makes the metric row a deterministic function of the scenario —
    the property ``replay-serve --verify`` checks.
    """
    from repro.core import SimulatorConfig

    return SimulatorConfig(
        seed=args.seed,
        service_duration=args.service_duration,
        measure_response_time=False,
        payment_backend=getattr(args, "payment_backend", "python"),
        # Only `serve` exposes the flag; the other service commands fall
        # back to the COM_REPRO_SANITIZE_CONCURRENCY environment switch.
        sanitize_concurrency=getattr(args, "sanitize_concurrency", False),
    )


def _apply_batching(gateway, args: argparse.Namespace):
    """Apply the --batch/--batch-linger-ms knobs to a gateway.

    Restored/recovered gateways are built by classmethods without the
    batching parameters; setting the attributes before ``start()`` is
    equivalent to passing them at construction.
    """
    from repro.errors import ConfigurationError

    batch_max = getattr(args, "batch", 1)
    linger = getattr(args, "batch_linger_ms", 0.0)
    if batch_max < 1:
        raise ConfigurationError(f"--batch must be >= 1, got {batch_max}")
    if linger < 0:
        raise ConfigurationError(
            f"--batch-linger-ms must be >= 0, got {linger}"
        )
    gateway.batch_max = batch_max
    gateway.batch_linger_ms = linger
    return gateway


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.errors import ConfigurationError
    from repro.obs.events import EventLog
    from repro.service import (
        AdmissionPolicy,
        DashboardServer,
        JournalConfig,
        MatchingGateway,
        MatchingServer,
        RealTimeClock,
        recover_gateway,
    )

    clock = RealTimeClock(speed=args.speed) if args.real_time else None
    admission = AdmissionPolicy(max_pending=args.max_pending)
    if args.restore and args.journal:
        raise ConfigurationError(
            "--restore and --journal are mutually exclusive: a journal "
            "directory carries its own checkpoint to recover from"
        )
    if args.restore:
        gateway = MatchingGateway.from_snapshot(
            args.restore, clock=clock, admission=admission
        )
        if args.events:
            gateway.attach_events(
                EventLog(args.events, registry=gateway.registry)
            )
        print(f"restored: {args.restore}")
    elif args.journal:
        journal_config = JournalConfig(
            directory=args.journal,
            fsync=args.fsync,
            fsync_interval=args.fsync_interval,
            checkpoint_every=args.checkpoint_every,
        )
        if journal_config.checkpoint_path.exists():
            gateway, report = recover_gateway(
                args.journal,
                fsync=args.fsync,
                fsync_interval=args.fsync_interval,
                checkpoint_every=args.checkpoint_every,
                clock=clock,
                admission=admission,
                events=args.events,
            )
            print(
                f"recovered: {args.journal} "
                f"({report.records_replayed} record(s) replayed, "
                f"{report.torn_bytes_dropped} torn byte(s) dropped, "
                f"{report.recovery_seconds * 1e3:.1f} ms)"
            )
        else:
            gateway = MatchingGateway(
                scenario=_service_scenario(args),
                algorithm=args.algorithm,
                config=_service_config(args),
                clock=clock,
                admission=admission,
                journal=journal_config,
                events=args.events,
            )
            print(f"journal: {journal_config.journal_path} ({args.fsync})")
    else:
        gateway = MatchingGateway(
            scenario=_service_scenario(args),
            algorithm=args.algorithm,
            config=_service_config(args),
            clock=clock,
            admission=admission,
            events=args.events,
        )
    _apply_batching(gateway, args)
    if args.events:
        print(f"event log: {args.events} (COMEVT1)")
    if args.dashboard is not None and not isinstance(gateway.events, EventLog):
        # The dashboard streams from an EventLog; with no --events given,
        # keep it in memory (ring only, nothing written to disk).
        gateway.attach_events(EventLog(registry=gateway.registry))
    server = MatchingServer(gateway, host=args.host, port=args.port)
    dashboard = (
        DashboardServer(
            gateway,
            host=args.host,
            port=args.dashboard,
            cell_km=args.dashboard_cell_km,
        )
        if args.dashboard is not None
        else None
    )

    async def _serve() -> None:
        host, port = await server.start()
        mode = "real-time" if args.real_time else "virtual-clock"
        print(f"serving {gateway.stats()['algorithm']} on {host}:{port} ({mode})")
        print("protocol: one JSON object per line — see docs/SERVICE.md")
        if dashboard is not None:
            dash_host, dash_port = await dashboard.start()
            print(f"dashboard: http://{dash_host}:{dash_port}/ (SSE at /events)")
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            if dashboard is not None:
                await dashboard.stop()
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("stopped")
    return 0


def _cmd_replay_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.service import (
        GatewayClient,
        MatchingGateway,
        MatchingServer,
        drive_trace,
    )

    scenario = _service_scenario(args)
    config = _service_config(args)

    async def _replay() -> dict:
        gateway = _apply_batching(
            MatchingGateway(
                scenario=scenario, algorithm=args.algorithm, config=config
            ),
            args,
        )
        server = MatchingServer(gateway)
        host, port = await server.start()
        events = list(scenario.events)
        try:
            async with GatewayClient(host, port) as client:
                if args.snapshot_at is None:
                    return await drive_trace(client, scenario.events)
                import tempfile
                from pathlib import Path

                cut = max(0, min(args.snapshot_at, len(events)))
                for event in events[:cut]:
                    await _submit_event(client, event)
                with tempfile.TemporaryDirectory() as tmp:
                    path = await client.snapshot(str(Path(tmp) / "mid.snap"))
                    print(f"checkpointed after {cut} events: {path}")
                    restored = _apply_batching(
                        MatchingGateway.from_snapshot(path), args
                    )
                    restored_server = MatchingServer(restored)
                    r_host, r_port = await restored_server.start()
                    try:
                        async with GatewayClient(r_host, r_port) as tail:
                            for event in events[cut:]:
                                await _submit_event(tail, event)
                            return await tail.drain()
                    finally:
                        await restored_server.stop()
        finally:
            await server.stop()

    metrics = asyncio.run(_replay())
    rendered = json.dumps(metrics, indent=2, sort_keys=True)
    print(rendered)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(rendered + "\n")
        print(f"saved: {args.output}")
    if args.verify:
        from repro.core import Simulator
        from repro.core.registry import algorithm_factory
        from repro.experiments.metrics import AlgorithmMetrics
        from repro.experiments.reporting import metrics_to_dict

        result = Simulator(config).run(scenario, algorithm_factory(args.algorithm))
        golden = metrics_to_dict(AlgorithmMetrics.from_simulation(result))
        served_row = json.dumps(metrics, sort_keys=True)
        golden_row = json.dumps(golden, sort_keys=True)
        if served_row != golden_row:
            print("VERIFY FAIL: served metrics differ from Simulator.run")
            print(f"  served: {served_row}")
            print(f"  golden: {golden_row}")
            return 1
        print("VERIFY OK: served metrics byte-identical to Simulator.run")
    return 0


def _cluster_plan(args: argparse.Namespace, scenario):
    """The shard plan a cluster command operates on."""
    from repro.cluster import ShardPlan, reach_from_events
    from repro.errors import ConfigurationError

    if args.shards < 1:
        raise ConfigurationError(f"--shards must be >= 1, got {args.shards}")
    reach = reach_from_events(scenario.events)
    if args.hetero:
        return ShardPlan.from_density(
            scenario.events, args.shards, args.cell_km, reach_km=reach
        )
    return ShardPlan.uniform(
        args.shards, args.cell_km, DEFAULT_CITY_KM, reach_km=reach
    )


def _cmd_serve_cluster(args: argparse.Namespace) -> int:
    import asyncio

    from repro.cluster import ClusterServer, stop_tcp_cluster, tcp_cluster

    scenario = _service_scenario(args)
    config = _service_config(args)
    plan = _cluster_plan(args, scenario)
    journal_dirs = None
    if args.journal_root:
        from pathlib import Path

        journal_dirs = {
            shard_id: Path(args.journal_root) / f"shard-{shard_id}"
            for shard_id in range(plan.shard_count)
        }

    async def _serve() -> None:
        router, logs, servers, clock = await tcp_cluster(
            scenario,
            plan,
            algorithm=args.algorithm,
            config=config,
            host=args.host,
            base_port=args.shard_base_port,
            journal_dirs=journal_dirs,
            sanitize=True,
            batch_max=getattr(args, "batch", 1),
            batch_linger_ms=getattr(args, "batch_linger_ms", 0.0),
        )
        front = ClusterServer(
            router,
            clock,
            host=args.host,
            port=args.port,
            logs=logs,
            record=args.record,
        )
        try:
            host, port = await front.start()
            print(
                f"cluster front door on {host}:{port} "
                f"({plan.shard_count} shard(s), cell {plan.cell_km} km, "
                f"{'density' if args.hetero else 'uniform'} plan)"
            )
            for shard_id, server in enumerate(servers):
                shard_host, shard_port = server.address
                cells = len(plan.cells_of(shard_id))
                print(
                    f"  shard {shard_id}: {shard_host}:{shard_port} "
                    f"({cells} cell(s))"
                )
            if args.record:
                print(f"merged recording at drain: {args.record}")
            print("verbs: ping request worker shed outcome stats drain")
            await front.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await front.stop()
            await stop_tcp_cluster(router, servers)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("cluster stopped")
    return 0


def _cmd_replay_cluster(args: argparse.Namespace) -> int:
    import asyncio
    import contextlib
    import json
    import tempfile
    from pathlib import Path

    from repro.cluster import (
        drive_cluster,
        local_cluster,
        recording_of,
        replay_cluster_log,
        stop_tcp_cluster,
        tcp_cluster,
    )
    from repro.faults.crash import CrashPlan
    from repro.service import replay_event_log

    scenario = _service_scenario(args)
    config = _service_config(args)
    plan = _cluster_plan(args, scenario)

    with contextlib.ExitStack() as stack:
        crash_plans = None
        journal_dirs = None
        if args.crash_shard is not None:
            if not 0 <= args.crash_shard < plan.shard_count:
                print(
                    f"--crash-shard {args.crash_shard} out of range for "
                    f"{plan.shard_count} shard(s)",
                    file=sys.stderr,
                )
                return 2
            crash_plans = {
                args.crash_shard: CrashPlan.at(
                    args.crash_channel, args.crash_index
                )
            }
            # Every crash channel sits on the journal path, so the
            # doomed shard gets one even when the others run bare.
            journal_dirs = {
                args.crash_shard: Path(
                    stack.enter_context(
                        tempfile.TemporaryDirectory(prefix="com-cluster-")
                    )
                )
            }
        record = args.record or str(
            Path(
                stack.enter_context(
                    tempfile.TemporaryDirectory(prefix="com-cluster-rec-")
                )
            )
            / "cluster.comevt"
        )

        async def _run():
            if args.tcp:
                router, logs, servers, _clock = await tcp_cluster(
                    scenario,
                    plan,
                    algorithm=args.algorithm,
                    config=config,
                    journal_dirs=journal_dirs,
                    crash_plans=crash_plans,
                    sanitize=True,
                    batch_max=getattr(args, "batch", 1),
                    batch_linger_ms=getattr(args, "batch_linger_ms", 0.0),
                )
            else:
                router, logs, _clock = local_cluster(
                    scenario,
                    plan,
                    algorithm=args.algorithm,
                    config=config,
                    journal_dirs=journal_dirs,
                    crash_plans=crash_plans,
                    sanitize=True,
                    batch_max=getattr(args, "batch", 1),
                    batch_linger_ms=getattr(args, "batch_linger_ms", 0.0),
                )
                servers = None
            await router.start()
            try:
                result = await drive_cluster(router, scenario.events)
                recording_of(router, logs, result, record)
            finally:
                if servers is not None:
                    await stop_tcp_cluster(router, servers)
                else:
                    await router.stop()
            return result

        result = asyncio.run(_run())
        completed = sum(result.row["completed"].values())
        print(
            f"cluster drained: {plan.shard_count} shard(s), "
            f"{result.forwards} forward(s), "
            f"{result.cross_shard_serves} cross-shard serve(s), "
            f"completed {completed}"
        )
        print(f"merged recording: {record}")

        report: dict = {
            "shards": plan.shard_count,
            "mode": "tcp" if args.tcp else "in-process",
            "hetero": bool(args.hetero),
            "forwards": result.forwards,
            "cross_shard_serves": result.cross_shard_serves,
            "failovers": result.failovers,
            "crashed_shards": result.crashed_shards,
            "lost_workers": result.lost_workers,
            "completed": completed,
            "metrics": result.row,
        }
        status = 0
        if args.crash_shard is not None:
            degraded = (
                args.crash_shard in result.crashed_shards
                and result.failovers >= 1
            )
            report["degraded_ok"] = degraded
            if degraded:
                print(
                    f"DEGRADED OK: shard {args.crash_shard} fail-stopped "
                    f"({args.crash_channel}@{args.crash_index}); router "
                    f"failed over {result.failovers} arrival route(s), "
                    f"lost {result.lost_workers} worker(s), survivors "
                    f"drained clean"
                )
            else:
                print(
                    f"DEGRADED FAIL: crash on shard {args.crash_shard} did "
                    f"not fire or the router never failed over "
                    f"(crashed={result.crashed_shards}, "
                    f"failovers={result.failovers})",
                )
                status = 1
        elif args.verify:
            if plan.shard_count == 1:
                verify_report = asyncio.run(
                    replay_event_log(
                        record,
                        scenario,
                        algorithm=args.algorithm,
                        config=config,
                    )
                )
            else:
                verify_report = asyncio.run(
                    replay_cluster_log(
                        record,
                        scenario,
                        algorithm=args.algorithm,
                        config=config,
                    )
                )
            report["replay"] = verify_report.as_dict()
            if verify_report.verified:
                print(
                    "VERIFY OK: merged canonical stream and cluster row "
                    "byte-identical on replay"
                )
            else:
                print(
                    "VERIFY FAIL: cluster replay diverged "
                    f"(stream={verify_report.stream_identical}, "
                    f"row={verify_report.row_identical})"
                )
                status = 1
        if args.output:
            Path(args.output).write_text(
                json.dumps(report, indent=2, sort_keys=True) + "\n"
            )
            print(f"saved: {args.output}")
        return status


def _cmd_replay_events(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.service import replay_event_log

    scenario = _service_scenario(args)
    config = _service_config(args)
    if getattr(args, "shards", 1) > 1:
        from repro.cluster import replay_cluster_log

        cluster_report = asyncio.run(
            replay_cluster_log(
                args.log,
                scenario,
                algorithm=args.algorithm,
                config=config,
            )
        )
        print(
            f"replayed {args.log} ({cluster_report.shards} shard(s)): "
            f"{cluster_report.recorded_events} recorded event(s), "
            f"{cluster_report.workers} worker(s), "
            f"{cluster_report.requests} request drive(s), "
            f"{cluster_report.sheds} shed(s)"
        )
        print(
            f"  stream "
            f"{'identical' if cluster_report.stream_identical else 'DIVERGED'}, "
            f"cluster row "
            f"{'identical' if cluster_report.row_identical else 'DIVERGED'}"
        )
        if args.output:
            from pathlib import Path

            Path(args.output).write_text(
                json.dumps(cluster_report.as_dict(), indent=2, sort_keys=True)
                + "\n"
            )
            print(f"saved: {args.output}")
        if args.verify:
            if not cluster_report.verified:
                print(
                    "VERIFY FAIL: cluster replay did not reproduce the "
                    "recorded stream"
                )
                return 1
            print(
                "VERIFY OK: merged canonical stream and cluster row "
                "byte-identical to the recording"
            )
        return 0
    report = asyncio.run(
        replay_event_log(
            args.log,
            scenario,
            algorithm=args.algorithm,
            config=config,
            tcp=args.tcp,
            batch_max=getattr(args, "batch", 1),
            batch_linger_ms=getattr(args, "batch_linger_ms", 0.0),
        )
    )
    print(
        f"replayed {args.log} ({report.mode}): "
        f"{report.recorded_events} recorded event(s), "
        f"{report.workers} worker(s), {report.requests} request(s), "
        f"{report.sheds} shed(s), {report.crashes_recorded} crash marker(s)"
    )
    print(
        f"  stream {'identical' if report.stream_identical else 'DIVERGED'}, "
        f"metrics row {'identical' if report.row_identical else 'DIVERGED'}"
    )
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(
            json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"saved: {args.output}")
    if args.verify:
        if not report.verified:
            print(
                "VERIFY FAIL: replay did not reproduce the recorded stream"
            )
            return 1
        print(
            "VERIFY OK: canonical event stream and metrics row "
            "byte-identical to the recording"
        )
    return 0


def _cmd_soak(args: argparse.Namespace) -> int:
    import asyncio
    import contextlib
    import json
    import tempfile

    from repro.service import SoakConfig, run_soak

    scenario = _service_scenario(args)
    config = _service_config(args)
    soak = SoakConfig(
        cycles=args.cycles,
        seed=args.soak_seed,
        speed=args.speed,
        fsync=args.fsync,
        events=not args.no_events,
        batch_max=getattr(args, "batch", 1),
        batch_linger_ms=getattr(args, "batch_linger_ms", 0.0),
    )
    with contextlib.ExitStack() as stack:
        directory = args.directory or stack.enter_context(
            tempfile.TemporaryDirectory(prefix="com-soak-")
        )
        report = asyncio.run(
            run_soak(
                scenario,
                directory,
                algorithm=args.algorithm,
                config=config,
                soak=soak,
            )
        )
    print(
        f"soak: {report.events_submitted} events, "
        f"{report.induced_crashes} induced crash(es), "
        f"{report.retries} retried arrival(s), sanitizers on "
        f"(constraints + concurrency, {report.loop_stalls} loop stall(s))"
    )
    for number, recovery in enumerate(report.recoveries, start=1):
        print(
            f"  recovery {number}: {recovery.records_replayed} record(s) "
            f"replayed from seq {recovery.checkpoint_seq}, "
            f"{recovery.torn_bytes_dropped} torn byte(s), "
            f"{recovery.recovery_seconds * 1e3:.1f} ms"
        )
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(
            json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"saved: {args.output}")
    if not report.metrics_identical:
        print("SOAK FAIL: drained metrics differ from an uninterrupted run")
        return 1
    if report.events_identical is False:
        print(
            "SOAK FAIL: replaying the COMEVT1 stream did not reproduce "
            "the recorded canonical events"
        )
        return 1
    if report.events_identical:
        print(
            f"  event log: {report.event_count} canonical event(s), "
            "replay byte-identical across crash markers"
        )
    print(
        "SOAK OK: metrics byte-identical to an uninterrupted run "
        f"(max recovery {report.max_recovery_seconds * 1e3:.1f} ms)"
    )
    return 0


async def _submit_event(client, event) -> None:
    from repro.core.events import EventKind

    if event.kind is EventKind.WORKER:
        assert event.worker is not None
        await client.submit_worker(event.worker)
    else:
        assert event.request is not None
        await client.submit_request(event.request)


def _cmd_quickstart(_: argparse.Namespace) -> int:
    from repro.core import Simulator, SimulatorConfig
    from repro.core.registry import algorithm_factory
    from repro.workloads.synthetic import SyntheticWorkload, SyntheticWorkloadConfig

    scenario = SyntheticWorkload(
        SyntheticWorkloadConfig(
            request_count=DEFAULT_DEMO_REQUESTS,
            worker_count=DEFAULT_DEMO_WORKERS,
            city_km=DEFAULT_CITY_KM,
        )
    ).build(seed=1)
    simulator = Simulator(
        SimulatorConfig(
            seed=0, worker_reentry=True, service_duration=DEFAULT_SERVICE_DURATION
        )
    )
    table = TextTable(
        ["Algorithm", "Revenue", "Completed", "|CoR|", "AcpRt"],
        title=f"Quickstart — {scenario.name}",
    )
    for name in ("tota", "demcom", "ramcom"):
        result = simulator.run(scenario, algorithm_factory(name))
        revenue = sum(
            p.ledger.revenue + p.ledger.total_lender_income
            for p in result.platforms.values()
        )
        table.add_row(
            [
                result.algorithm_name,
                round(revenue),
                result.total_completed,
                result.total_cooperative,
                result.overall_acceptance_ratio,
            ]
        )
    print(table.render())
    return 0


def _cmd_datasets(_: argparse.Namespace) -> int:
    from repro.workloads.datasets import DATASETS

    table = TextTable(
        ["Name", "Company", "City", "Month", "|R|", "|W|", "rad (km)"],
        title="Table III — simulated dataset registry (full-scale counts)",
    )
    for spec in DATASETS.values():
        table.add_row(
            [
                spec.name,
                spec.company,
                spec.city,
                spec.month,
                spec.requests,
                spec.workers,
                spec.radius_km,
            ]
        )
    print(table.render())
    return 0


def _cmd_algorithms(_: argparse.Namespace) -> int:
    from repro.core.registry import available_algorithms

    for name in available_algorithms():
        print(name)
    print("off  (offline optimum; via repro.baselines.solve_offline)")
    return 0


_COMMANDS = {
    "table": _cmd_table,
    "figure": _cmd_figure,
    "cr": _cmd_cr,
    "chaos": _cmd_chaos,
    "trace": _cmd_trace,
    "sensitivity": _cmd_sensitivity,
    "ablation": _cmd_ablation,
    "reproduce": _cmd_reproduce,
    "bench": _cmd_bench,
    "lint": _cmd_lint,
    "serve": _cmd_serve,
    "serve-cluster": _cmd_serve_cluster,
    "replay-serve": _cmd_replay_serve,
    "replay-cluster": _cmd_replay_cluster,
    "replay-events": _cmd_replay_events,
    "soak": _cmd_soak,
    "quickstart": _cmd_quickstart,
    "datasets": _cmd_datasets,
    "algorithms": _cmd_algorithms,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
