"""Fault injection and resilience for the cooperation exchange.

The paper's COM model (Def. 2.6) treats the shared outer-worker pool as
always reachable and every claim as atomic.  At production scale the
exchange is a remote service: links drop, claims race, messages lag and
workers vanish mid-assignment.  This package makes those failures a
first-class, *deterministic* part of the simulation:

* :mod:`plan` — :class:`FaultPlan` (what goes wrong, seeded),
  :class:`RetryPolicy` and :class:`CircuitBreakerConfig` (how the
  platforms cope);
* :mod:`injector` — :class:`FaultInjector`, realising a plan into
  labelled, reproducible fault draws;
* :mod:`resilient` — :class:`ResilientExchange`, the retry / circuit
  breaker / degraded-mode wrapper, plus the :class:`ResilienceStats`
  failure accounting surfaced on :class:`~repro.core.simulator.
  PlatformOutcome`;
* :mod:`crash` — :class:`CrashPlan` / :class:`CrashInjector`,
  deterministic kill points (die at the Nth journal append / checkpoint
  / ack boundary) for the serving layer's crash-recovery drills.

See ``docs/RESILIENCE.md`` for the fault model and the degraded-mode
guarantees versus the paper's constraints.
"""

from repro.faults.plan import (
    ZERO_FAULTS,
    CircuitBreakerConfig,
    FaultPlan,
    OutageWindow,
    RetryPolicy,
)
from repro.faults.crash import (
    CRASH_CHANNELS,
    CrashInjector,
    CrashPlan,
    CrashPoint,
)
from repro.faults.injector import FaultInjector
from repro.faults.resilient import (
    CircuitBreaker,
    ResilienceStats,
    ResilientExchange,
)

__all__ = [
    "ZERO_FAULTS",
    "CRASH_CHANNELS",
    "CrashInjector",
    "CrashPlan",
    "CrashPoint",
    "FaultPlan",
    "OutageWindow",
    "RetryPolicy",
    "CircuitBreakerConfig",
    "FaultInjector",
    "CircuitBreaker",
    "ResilienceStats",
    "ResilientExchange",
]
