"""Realises a :class:`FaultPlan` into concrete, seeded fault draws.

Each fault channel draws from its own labelled stream derived from the
plan seed (``outage/<platform>``, ``claim/<worker>#<attempt>``,
``dropout/<worker>``, ``delay/<platform>/<peer>/<request>``), so:

* the realisation is a pure function of the plan — two injectors built
  from equal plans inject the identical fault sequence;
* channels are independent — enabling dropouts never perturbs which
  claims fail;
* per-event draws compare one uniform sample against the configured
  rate, so raising a rate only *adds* faults (monotone sweeps).

A zero-rate channel never touches an RNG, keeping the zero-fault plan a
strict pass-through.
"""

from __future__ import annotations

import random

from repro.faults.plan import FaultPlan, OutageWindow
from repro.utils.rng import derive_rng

__all__ = ["FaultInjector"]


class FaultInjector:
    """Answers "does this operation fail?" deterministically in the plan."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._windows: dict[str, tuple[OutageWindow, ...]] = {}
        self._claim_attempts: dict[str, int] = {}
        self._dropout_fate: dict[str, bool] = {}

    @property
    def active(self) -> bool:
        """False iff the plan injects nothing (wrapper may fast-path)."""
        return not self.plan.is_zero

    # -- platform outages ----------------------------------------------------

    def outage_windows(self, platform_id: str) -> tuple[OutageWindow, ...]:
        """The platform's realised outage windows (explicit + random)."""
        cached = self._windows.get(platform_id)
        if cached is not None:
            return cached
        plan = self.plan
        windows = [w for w in plan.outages if w.platform_id == platform_id]
        if plan.random_outages_per_platform > 0:
            rng = derive_rng(plan.seed, f"outage/{platform_id}")
            span = max(0.0, plan.horizon_s - plan.outage_duration_s)
            for _ in range(plan.random_outages_per_platform):
                start = rng.uniform(0.0, span)
                windows.append(
                    OutageWindow(
                        platform_id, start, start + plan.outage_duration_s
                    )
                )
        realized = tuple(sorted(windows, key=lambda w: (w.start, w.end)))
        self._windows[platform_id] = realized
        return realized

    def outage_active(self, platform_id: str, time: float) -> bool:
        """True iff the platform's exchange link is down at ``time``."""
        plan = self.plan
        if not plan.outages and plan.random_outages_per_platform == 0:
            return False
        return any(w.active_at(time) for w in self.outage_windows(platform_id))

    def outage_seconds(self, platform_id: str, horizon: float) -> float:
        """Total outage time within ``[0, horizon)`` for one platform."""
        plan = self.plan
        if not plan.outages and plan.random_outages_per_platform == 0:
            return 0.0
        return sum(
            max(0.0, min(w.end, horizon) - min(w.start, horizon))
            for w in self.outage_windows(platform_id)
        )

    # -- claim failures and dropouts -----------------------------------------

    def claim_fails(self, worker_id: str) -> bool:
        """One transient lost-claim draw for this worker.

        Successive calls for the same worker (retries, or later requests
        racing for them) advance a per-worker attempt counter so each
        attempt gets an independent draw.
        """
        rate = self.plan.claim_failure_rate
        if rate == 0.0:
            return False
        attempt = self._claim_attempts.get(worker_id, 0)
        self._claim_attempts[worker_id] = attempt + 1
        rng = derive_rng(self.plan.seed, f"claim/{worker_id}#{attempt}")
        return rng.random() < rate

    def worker_drops_out(self, worker_id: str) -> bool:
        """Whether this worker's first claim reveals a mid-assignment
        dropout.  A per-worker fate: stable across retries."""
        rate = self.plan.worker_dropout_rate
        if rate == 0.0:
            return False
        fate = self._dropout_fate.get(worker_id)
        if fate is None:
            rng = derive_rng(self.plan.seed, f"dropout/{worker_id}")
            fate = rng.random() < rate
            self._dropout_fate[worker_id] = fate
        return fate

    # -- cooperation-message delays ------------------------------------------

    def message_delay(
        self, platform_id: str, peer_id: str, request_id: str
    ) -> float:
        """Delay (sim-seconds) on one cooperation probe; 0.0 when on time."""
        rate = self.plan.message_delay_rate
        if rate == 0.0:
            return 0.0
        rng = derive_rng(
            self.plan.seed, f"delay/{platform_id}/{peer_id}/{request_id}"
        )
        if rng.random() >= rate:
            return 0.0
        # Delay magnitude: 0.5x - 2x the configured latency, heavy enough
        # that some delayed messages blow the call timeout.
        return self.plan.message_delay_s * (0.5 + 1.5 * rng.random())

    # -- retry jitter --------------------------------------------------------

    def backoff_rng(self, worker_id: str, attempt: int) -> random.Random:
        """The jitter stream for one backoff decision."""
        return derive_rng(self.plan.seed, f"backoff/{worker_id}#{attempt}")
