"""Retry, circuit-breaking and degraded-mode wrapper around the exchange.

:class:`ResilientExchange` duck-types :class:`repro.core.exchange.
CooperationExchange` so the simulator, the :class:`PlatformContext` and
every algorithm keep working unchanged, while the cross-platform calls —
``outer_candidates`` and outer ``claim`` — go through a fault-aware path:

* **Outages / delays.**  Each peer probe first consults the
  :class:`~repro.faults.injector.FaultInjector`; a peer in an outage
  window, or whose cooperation message is delayed beyond the retry
  policy's call timeout, is dropped from the candidate view and counts
  as a failure on the per-peer circuit breaker.
* **Circuit breaker (degraded mode).**  After ``failure_threshold``
  consecutive failures a peer's breaker trips open: the peer is skipped
  without probing until ``reset_timeout_s`` of sim-time has passed, then
  a half-open probe re-tests the link (success closes the breaker,
  failure re-opens it).  When *no* peer is reachable the wrapper raises
  :class:`~repro.errors.ExchangeUnavailableError` and the platform falls
  back to inner-only matching — the COM constraints (Def. 2.6) still
  hold because degraded mode only ever *shrinks* the candidate set.
* **Claims.**  Outer claims may transiently fail (lost-claim race); the
  wrapper retries with exponential backoff and jitter, in sim-time, up
  to ``max_attempts``.  Exhausted retries, or a worker dropping out
  mid-assignment, raise :class:`~repro.errors.ClaimConflictError`; the
  simulator rejects the request and the worker-removal invariant is
  untouched (a worker is removed from all waiting lists exactly once).

With a zero-fault plan no injector stream is consulted and every call is
a plain delegation — simulations stay bit-identical to the unwrapped
exchange.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING

from repro.errors import ClaimConflictError, ExchangeUnavailableError
from repro.faults.injector import FaultInjector
from repro.faults.plan import CircuitBreakerConfig, RetryPolicy
from repro.obs import NULL_PROBE, Probe

if TYPE_CHECKING:  # avoid importing core at runtime (layering)
    from repro.core.entities import Request, Worker
    from repro.core.exchange import CooperationExchange
    from repro.core.waiting_list import WaitingList

__all__ = ["ResilienceStats", "CircuitBreaker", "ResilientExchange"]


@dataclass
class ResilienceStats:
    """Failure accounting for one platform in one run."""

    #: Sim-seconds this platform's exchange link was down.
    outage_seconds: float = 0.0
    #: Claim attempts that transiently failed and were retried.
    retries: int = 0
    #: Sim-seconds spent backing off between retries.
    retry_backoff_seconds: float = 0.0
    #: Claims abandoned after exhausting every retry.
    failed_claims: int = 0
    #: Requests decided with a reduced (or empty) cooperative view.
    degraded_decisions: int = 0
    #: Workers lost to mid-assignment dropout while this platform claimed.
    dropped_workers: int = 0
    #: Times one of this platform's per-peer breakers tripped open.
    breaker_trips: int = 0
    #: Cooperation messages that arrived late (within or past timeout).
    delayed_messages: int = 0

    def as_dict(self) -> dict[str, float]:
        """JSON-ready view (used by reporting)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def merge(self, other: "ResilienceStats") -> "ResilienceStats":
        """Sum two stats (aggregation across platforms)."""
        merged = ResilienceStats()
        for f in fields(self):
            setattr(merged, f.name, getattr(self, f.name) + getattr(other, f.name))
        return merged


class CircuitBreaker:
    """A per-peer breaker over sim-time.

    States: ``closed`` (healthy), ``open`` (peer skipped), ``half_open``
    (one probe allowed after the reset timeout).
    """

    __slots__ = ("config", "state", "failures", "opened_at")

    def __init__(self, config: CircuitBreakerConfig):
        self.config = config
        self.state = "closed"
        self.failures = 0
        self.opened_at = 0.0

    def allows(self, now: float) -> bool:
        """Whether a call to the peer may proceed at ``now``."""
        if self.state == "open":
            if now - self.opened_at >= self.config.reset_timeout_s:
                self.state = "half_open"
                return True
            return False
        return True

    def record_success(self, now: float) -> None:
        """A call to the peer succeeded; heal the breaker."""
        self.failures = 0
        self.state = "closed"

    def record_failure(self, now: float) -> bool:
        """A call failed; returns True when this failure trips the breaker."""
        if self.state == "half_open":
            self.state = "open"
            self.opened_at = now
            return True
        self.failures += 1
        if self.state == "closed" and self.failures >= self.config.failure_threshold:
            self.state = "open"
            self.opened_at = now
            return True
        return False


class ResilientExchange:
    """Fault-aware façade over a :class:`CooperationExchange`."""

    def __init__(
        self,
        exchange: "CooperationExchange",
        injector: FaultInjector,
        retry_policy: RetryPolicy | None = None,
        breaker_config: CircuitBreakerConfig | None = None,
        probe: Probe = NULL_PROBE,
    ):
        self._inner = exchange
        self._injector = injector
        self._policy = retry_policy or RetryPolicy()
        self._breaker_config = breaker_config or CircuitBreakerConfig()
        self._probe = probe
        self._now = 0.0
        self._stats: dict[str, ResilienceStats] = {
            platform_id: ResilienceStats() for platform_id in exchange.platform_ids
        }
        self._breakers: dict[tuple[str, str], CircuitBreaker] = {}

    # -- plumbing -------------------------------------------------------------

    @property
    def wrapped(self) -> "CooperationExchange":
        """The underlying exchange."""
        return self._inner

    @property
    def injector(self) -> FaultInjector:
        """The fault source."""
        return self._injector

    @property
    def retry_policy(self) -> RetryPolicy:
        """The claim retry policy."""
        return self._policy

    def advance_to(self, time: float) -> None:
        """Move the wrapper's sim clock forward (never backward)."""
        if time > self._now:
            self._now = time

    def stats_for(self, platform_id: str) -> ResilienceStats:
        """One platform's failure counters."""
        return self._stats[platform_id]

    def finalize(self, horizon: float) -> None:
        """Fill per-platform outage totals once the run's horizon is known."""
        for platform_id, stats in self._stats.items():
            stats.outage_seconds = self._injector.outage_seconds(
                platform_id, horizon
            )

    def breaker_state(self, platform_id: str, peer_id: str) -> str:
        """The breaker state on the ``platform -> peer`` link (debugging)."""
        breaker = self._breakers.get((platform_id, peer_id))
        return breaker.state if breaker is not None else "closed"

    def _breaker(self, platform_id: str, peer_id: str) -> CircuitBreaker:
        key = (platform_id, peer_id)
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(self._breaker_config)
            self._breakers[key] = breaker
        return breaker

    def _record_failure(
        self,
        breaker: CircuitBreaker,
        stats: ResilienceStats,
        platform_id: str = "",
        peer_id: str = "",
    ) -> None:
        if breaker.record_failure(self._now):
            stats.breaker_trips += 1
            if self._probe.enabled:
                self._probe.instant(
                    "breaker.open",
                    category="faults",
                    tid=platform_id,
                    peer=peer_id,
                )
                self._probe.count(
                    "breaker_trips_total", platform=platform_id, peer=peer_id
                )

    # -- transparent delegations ----------------------------------------------

    @property
    def platform_ids(self) -> list[str]:
        """The cooperating platforms."""
        return self._inner.platform_ids

    def inner_list(self, platform_id: str) -> "WaitingList":
        """The platform's own waiting list (local; never fails)."""
        return self._inner.inner_list(platform_id)

    def worker_arrives(self, worker: "Worker") -> None:
        """Register a worker arrival (local; never fails)."""
        self._inner.worker_arrives(worker)

    def inner_candidates(
        self, platform_id: str, request: "Request"
    ) -> list["Worker"]:
        """Eligible inner workers (local; never fails)."""
        return self._inner.inner_candidates(platform_id, request)

    def is_available(self, worker_id: str) -> bool:
        """True iff the worker is still waiting somewhere."""
        return self._inner.is_available(worker_id)

    def available_count(self, platform_id: str | None = None) -> int:
        """Waiting workers on one platform or overall."""
        return self._inner.available_count(platform_id)

    def home_of(self, worker_id: str) -> str | None:
        """The worker's home platform, if still waiting."""
        return self._inner.home_of(worker_id)

    def evict(self, worker_id: str) -> "Worker":
        """Administrative removal (shift end); bypasses fault injection."""
        return self._inner.evict(worker_id)

    # -- fault-aware cross-platform calls -------------------------------------

    def outer_candidates(
        self, platform_id: str, request: "Request"
    ) -> list["Worker"]:
        """Eligible shareable outer workers across *reachable* peers.

        Raises :class:`ExchangeUnavailableError` when the platform's own
        link is down or every peer is unreachable (degraded mode).
        """
        if not self._injector.active:
            return self._inner.outer_candidates(platform_id, request)

        now = self._now
        stats = self._stats[platform_id]
        if self._injector.outage_active(platform_id, now):
            # Our own link to the exchange is down: no cooperative view.
            stats.degraded_decisions += 1
            if self._probe.enabled:
                self._probe.count(
                    "degraded_decisions_total", platform=platform_id
                )
                self._probe.instant(
                    "exchange.outage", category="faults", tid=platform_id
                )
            raise ExchangeUnavailableError(
                "platform link to the cooperation exchange is down",
                time=now,
                platform_id=platform_id,
                request_id=request.request_id,
            )

        probe = self._probe
        reachable: list[str] = []
        skipped = 0
        for peer_id in self._inner.platform_ids:
            if peer_id == platform_id:
                continue
            breaker = self._breaker(platform_id, peer_id)
            if not breaker.allows(now):
                skipped += 1
                if probe.enabled:
                    probe.count(
                        "peer_probes_total",
                        platform=platform_id,
                        peer=peer_id,
                        outcome="breaker_open",
                    )
                continue
            if self._injector.outage_active(peer_id, now):
                skipped += 1
                self._record_failure(breaker, stats, platform_id, peer_id)
                if probe.enabled:
                    # An RPC into an outage burns the whole call budget.
                    probe.observe(
                        "exchange_rpc_seconds",
                        self._policy.call_timeout_s,
                        platform=platform_id,
                        peer=peer_id,
                        outcome="outage",
                    )
                continue
            delay = self._injector.message_delay(
                platform_id, peer_id, request.request_id
            )
            if delay > 0.0:
                stats.delayed_messages += 1
            if delay > self._policy.call_timeout_s:
                skipped += 1
                self._record_failure(breaker, stats, platform_id, peer_id)
                if probe.enabled:
                    probe.observe(
                        "exchange_rpc_seconds",
                        delay,
                        platform=platform_id,
                        peer=peer_id,
                        outcome="timeout",
                    )
                continue
            healed = breaker.state == "half_open"
            breaker.record_success(now)
            if probe.enabled:
                probe.observe(
                    "exchange_rpc_seconds",
                    delay,
                    platform=platform_id,
                    peer=peer_id,
                    outcome="ok",
                )
                if healed:
                    probe.instant(
                        "breaker.close",
                        category="faults",
                        tid=platform_id,
                        peer=peer_id,
                    )
            reachable.append(peer_id)

        if skipped:
            stats.degraded_decisions += 1
            if probe.enabled:
                probe.count("degraded_decisions_total", platform=platform_id)
        if not reachable and skipped:
            raise ExchangeUnavailableError(
                "no cooperating peer is reachable",
                time=now,
                platform_id=platform_id,
                request_id=request.request_id,
            )
        return self._inner.outer_candidates(platform_id, request, peers=reachable)

    def claim(self, worker_id: str, claimant: str | None = None) -> "Worker":
        """Claim a worker, riding out transient failures.

        ``claimant`` is the platform performing the assignment (failure
        accounting and the circuit breaker attribute faults to it); when
        omitted, faults are attributed to the worker's home platform.
        """
        if not self._injector.active:
            return self._inner.claim(worker_id)

        home = self._inner.home_of(worker_id)
        owner = claimant if claimant is not None else home
        stats = self._stats.get(owner or "", None)
        outer = home is not None and claimant is not None and claimant != home
        breaker = (
            self._breaker(claimant, home) if outer and home is not None else None
        )

        probe = self._probe
        if home is not None and self._injector.worker_drops_out(worker_id):
            # The worker is gone for good: remove them from every list
            # (exactly once) and fail the assignment.
            self._inner.claim(worker_id)
            if stats is not None:
                stats.dropped_workers += 1
            if breaker is not None:
                self._record_failure(breaker, stats, claimant or "", home or "")
            if probe.enabled:
                probe.instant(
                    "claim.dropout",
                    category="faults",
                    tid=owner or "",
                    worker=worker_id,
                )
                probe.count(
                    "claims_total", platform=owner or "", outcome="dropout"
                )
            raise ClaimConflictError(
                "worker dropped out mid-assignment",
                time=self._now,
                platform_id=owner,
                worker_id=worker_id,
            )

        attempt = 0
        while outer and self._injector.claim_fails(worker_id):
            attempt += 1
            if attempt >= self._policy.max_attempts:
                if stats is not None:
                    stats.failed_claims += 1
                if breaker is not None:
                    self._record_failure(
                        breaker, stats, claimant or "", home or ""
                    )
                if probe.enabled:
                    probe.count(
                        "claims_total",
                        platform=owner or "",
                        outcome="retries_exhausted",
                    )
                raise ClaimConflictError(
                    f"claim lost {attempt} races, retries exhausted",
                    time=self._now,
                    platform_id=owner,
                    worker_id=worker_id,
                )
            if stats is not None:
                stats.retries += 1
                backoff = self._policy.backoff_for(
                    attempt - 1, self._injector.backoff_rng(worker_id, attempt)
                )
                stats.retry_backoff_seconds += backoff
                if probe.enabled:
                    probe.instant(
                        "claim.retry",
                        category="faults",
                        tid=owner or "",
                        worker=worker_id,
                        attempt=attempt,
                        backoff_s=backoff,
                    )
                    probe.count("claim_retries_total", platform=owner or "")
                    probe.observe(
                        "claim_backoff_seconds", backoff, platform=owner or ""
                    )

        if breaker is not None:
            breaker.record_success(self._now)
        return self._inner.claim(worker_id)
