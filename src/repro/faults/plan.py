"""Deterministic fault plans for the cooperation exchange.

A :class:`FaultPlan` describes *what can go wrong* during one simulated
day: platform-outage windows, transient claim failures (the lost-claim
race on :meth:`CooperationExchange.claim`), cooperation-message delays,
and workers dropping out mid-assignment.  A plan is pure configuration —
the :class:`~repro.faults.injector.FaultInjector` realises it into
concrete, seeded draws.

Every draw downstream is keyed by ``(plan.seed, label)`` through the same
SHA-256 scheme as :mod:`repro.utils.rng`, with one useful structural
property: a single uniform draw is compared against the configured rate,
so the *set* of realised faults grows monotonically with the rate.  Fault
sweeps (``benchmarks/bench_chaos.py``) therefore degrade smoothly instead
of re-rolling a new world per rate.

:data:`ZERO_FAULTS` (the default) injects nothing; the resilience wrapper
is then a strict pass-through and every simulation stays bit-identical to
the unwrapped exchange.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "OutageWindow",
    "FaultPlan",
    "RetryPolicy",
    "CircuitBreakerConfig",
    "ZERO_FAULTS",
]


@dataclass(frozen=True, slots=True)
class OutageWindow:
    """One platform's link to the exchange is down during ``[start, end)``."""

    platform_id: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ConfigurationError(
                f"outage window must end after it starts, got "
                f"[{self.start}, {self.end}) for {self.platform_id}"
            )

    def active_at(self, time: float) -> bool:
        """True iff ``time`` falls inside the window."""
        return self.start <= time < self.end

    @property
    def duration(self) -> float:
        """Window length in sim-seconds."""
        return self.end - self.start


def _require_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative description of the faults to inject.

    Attributes
    ----------
    seed:
        Root of every fault draw.  Independent from the simulator seed so
        the same scenario can be replayed under many fault realisations.
    outages:
        Explicit platform-outage windows (sim-time).
    random_outages_per_platform / outage_duration_s / horizon_s:
        Additionally drop each platform's exchange link for this many
        randomly-placed windows of ``outage_duration_s`` within
        ``[0, horizon_s)``.
    claim_failure_rate:
        Per-attempt probability that an *outer* claim transiently fails
        (another platform raced us to the worker; the worker stays
        available and the claim may be retried).
    message_delay_rate / message_delay_s:
        Probability that one cooperation message (an outer-candidates
        probe to a peer) is delayed, and the delay magnitude; delays
        beyond the retry policy's call timeout count as peer failures.
    worker_dropout_rate:
        Probability that a worker silently drops out mid-assignment: the
        first claim on them fails permanently and they leave every
        waiting list.
    """

    seed: int = 0
    outages: tuple[OutageWindow, ...] = ()
    random_outages_per_platform: int = 0
    outage_duration_s: float = 600.0
    horizon_s: float = 86_400.0
    claim_failure_rate: float = 0.0
    message_delay_rate: float = 0.0
    message_delay_s: float = 5.0
    worker_dropout_rate: float = 0.0

    def __post_init__(self) -> None:
        _require_rate("claim_failure_rate", self.claim_failure_rate)
        _require_rate("message_delay_rate", self.message_delay_rate)
        _require_rate("worker_dropout_rate", self.worker_dropout_rate)
        if self.random_outages_per_platform < 0:
            raise ConfigurationError(
                "random_outages_per_platform must be >= 0, got "
                f"{self.random_outages_per_platform}"
            )
        if self.outage_duration_s <= 0.0:
            raise ConfigurationError(
                f"outage_duration_s must be > 0, got {self.outage_duration_s}"
            )
        if self.horizon_s <= 0.0:
            raise ConfigurationError(
                f"horizon_s must be > 0, got {self.horizon_s}"
            )
        if self.message_delay_s < 0.0:
            raise ConfigurationError(
                f"message_delay_s must be >= 0, got {self.message_delay_s}"
            )

    @property
    def is_zero(self) -> bool:
        """True iff this plan injects no fault at all (pure pass-through)."""
        return (
            not self.outages
            and self.random_outages_per_platform == 0
            and self.claim_failure_rate == 0.0
            and self.message_delay_rate == 0.0
            and self.worker_dropout_rate == 0.0
        )

    @classmethod
    def uniform(
        cls,
        rate: float,
        seed: int = 0,
        horizon_s: float = 86_400.0,
    ) -> "FaultPlan":
        """The canonical single-knob plan used by the chaos sweeps.

        ``rate`` scales every fault channel at once: transient claim
        failures at ``rate``, message delays at ``rate``, dropouts at
        ``0.3 * rate``, and up to three random outage windows per
        platform as the rate approaches 1.
        """
        _require_rate("rate", rate)
        return cls(
            seed=seed,
            random_outages_per_platform=int(round(3 * rate)),
            outage_duration_s=max(1.0, horizon_s / 50.0),
            horizon_s=horizon_s,
            claim_failure_rate=rate,
            message_delay_rate=rate,
            worker_dropout_rate=0.3 * rate,
        )


#: The no-op plan; wrapping with it keeps runs bit-identical.
ZERO_FAULTS = FaultPlan()


@dataclass(frozen=True)
class RetryPolicy:
    """Sim-time retry policy for exchange calls.

    Attributes
    ----------
    max_attempts:
        Total claim attempts (first try included) before giving up.
    base_backoff_s / multiplier / max_backoff_s:
        Exponential backoff schedule between attempts, in sim-seconds.
    jitter:
        Fractional jitter band: the realised backoff is the scheduled one
        scaled by a uniform factor in ``[1 - jitter, 1 + jitter]``.
    call_timeout_s:
        Per-call budget; a cooperation message delayed beyond it counts
        as a peer failure (and feeds the circuit breaker).
    """

    max_attempts: int = 3
    base_backoff_s: float = 1.0
    multiplier: float = 2.0
    max_backoff_s: float = 30.0
    jitter: float = 0.1
    call_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_backoff_s < 0.0 or self.max_backoff_s < 0.0:
            raise ConfigurationError("backoff durations must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        _require_rate("jitter", self.jitter)
        if self.call_timeout_s <= 0.0:
            raise ConfigurationError(
                f"call_timeout_s must be > 0, got {self.call_timeout_s}"
            )

    def backoff_for(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (0-based), jittered."""
        scheduled = min(
            self.max_backoff_s, self.base_backoff_s * self.multiplier**attempt
        )
        if self.jitter == 0.0:
            return scheduled
        factor = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, scheduled * factor)


@dataclass(frozen=True)
class CircuitBreakerConfig:
    """Per-peer circuit breaker tunables (sim-time)."""

    #: Consecutive failures that trip the breaker open.
    failure_threshold: int = 3
    #: Sim-seconds an open breaker waits before letting a half-open probe
    #: through.
    reset_timeout_s: float = 300.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.reset_timeout_s <= 0.0:
            raise ConfigurationError(
                f"reset_timeout_s must be > 0, got {self.reset_timeout_s}"
            )
