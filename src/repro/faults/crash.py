"""Deterministic kill-point injection for the serving layer.

:class:`~repro.faults.plan.FaultPlan` models *environmental* failures
(outages, lost claims, delays) that the matching engine survives in
process.  A :class:`CrashPlan` models the failure the engine cannot
survive: the gateway process itself dying.  It names exact boundaries in
the durability pipeline —

``journal_append``
    fire *before* the Nth journal record is written (the record is lost;
    the in-flight operation was applied in memory only and must be
    retried after recovery);
``journal_torn``
    fire *mid-write* of the Nth record: half the frame reaches the file,
    then the process dies — producing the torn tail that
    :meth:`repro.service.journal.Journal.open` must truncate;
``checkpoint``
    fire before the Nth checkpoint is written (the previous checkpoint
    must stay intact — this is what the atomic tmp+rename rotation is
    for);
``ack``
    fire *after* the Nth operation was fully applied and journaled but
    before its acknowledgement reaches the caller (the client retry is a
    duplicate; request-ID dedup must absorb it).

A plan is pure configuration; the mutable per-run cursor lives in
:class:`CrashInjector` (mirroring the :class:`~repro.faults.plan.
FaultPlan` / :class:`~repro.faults.injector.FaultInjector` split).  Kill
points are exact indices, not rates: the crash-recovery property tests
enumerate every boundary of a short trace, and the soak harness draws
indices from a seeded stream — either way the run is a pure function of
the plan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, InducedCrash

__all__ = ["CRASH_CHANNELS", "CrashPoint", "CrashPlan", "CrashInjector"]

#: The boundaries a kill point may name, in pipeline order.
CRASH_CHANNELS = ("journal_append", "journal_torn", "checkpoint", "ack")


@dataclass(frozen=True, slots=True)
class CrashPoint:
    """Die at the ``index``-th boundary (0-based) of ``channel``."""

    channel: str
    index: int

    def __post_init__(self) -> None:
        if self.channel not in CRASH_CHANNELS:
            raise ConfigurationError(
                f"unknown crash channel {self.channel!r}; "
                f"expected one of {CRASH_CHANNELS}"
            )
        if self.index < 0:
            raise ConfigurationError(
                f"crash index must be >= 0, got {self.index}"
            )


@dataclass(frozen=True)
class CrashPlan:
    """A declarative set of kill points (empty = never crash)."""

    points: tuple[CrashPoint, ...] = ()

    @classmethod
    def at(cls, channel: str, index: int) -> "CrashPlan":
        """A single-kill plan: die at boundary ``index`` of ``channel``."""
        return cls(points=(CrashPoint(channel, index),))

    @property
    def is_zero(self) -> bool:
        """True iff this plan never fires (pure pass-through)."""
        return not self.points


class CrashInjector:
    """Counts boundaries and raises :class:`InducedCrash` at kill points.

    One injector per gateway lifetime: recovery builds a fresh gateway,
    so a restarted process naturally starts from boundary zero again —
    matching how a real supervisor would restart a crashed binary.
    """

    def __init__(self, plan: CrashPlan | None):
        self.plan = plan or CrashPlan()
        self._points = {(p.channel, p.index) for p in self.plan.points}
        self._counts: dict[str, int] = {}

    @property
    def active(self) -> bool:
        """False iff no kill point can ever fire (callers may fast-path)."""
        return bool(self._points)

    def fires_next(self, channel: str) -> bool:
        """Peek: would the next :meth:`fire` on ``channel`` raise?

        Lets the journal stage a torn write (emit half a frame) before
        the subsequent :meth:`fire` call kills the process.
        """
        return (channel, self._counts.get(channel, 0)) in self._points

    def fire(self, channel: str) -> None:
        """Count one boundary crossing; raise when a kill point matches."""
        index = self._counts.get(channel, 0)
        self._counts[channel] = index + 1
        if (channel, index) in self._points:
            raise InducedCrash(
                f"induced crash at {channel} boundary #{index}"
            )
