"""Chaos experiments: how gracefully do the COM algorithms degrade?

A fault sweep replays one scenario under :meth:`FaultPlan.uniform` at
increasing fault rates and reports, per algorithm and rate, the revenue /
acceptance degradation together with the failure accounting (retries,
failed claims, degraded decisions, dropped workers, outage time).

Every run's matching is validated against the Definition-2.6 constraint
checker — resilience must never buy revenue back by breaking the model.

Used by ``benchmarks/bench_chaos.py`` and the ``com-repro chaos`` CLI
subcommand.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.constraints import validate_matching
from repro.core.registry import algorithm_factory
from repro.core.simulator import Scenario, SimulationResult, Simulator
from repro.experiments.harness import ExperimentConfig
from repro.experiments.metrics import AlgorithmMetrics, average_metrics
from repro.faults.plan import FaultPlan
from repro.utils.tables import TextTable

__all__ = ["ChaosRow", "ChaosResult", "run_fault_sweep"]

#: Default single-knob sweep grid.
DEFAULT_RATES: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8)


@dataclass(frozen=True)
class ChaosRow:
    """One (algorithm, fault-rate) measurement, averaged over seeds."""

    algorithm: str
    fault_rate: float
    metrics: AlgorithmMetrics

    @property
    def revenue(self) -> float:
        """Headline revenue (Def. 2.5 + lender income), seed-averaged."""
        return self.metrics.total_revenue

    @property
    def completed(self) -> float:
        """|CpR| across platforms."""
        return self.metrics.total_completed

    @property
    def acceptance_ratio(self) -> float | None:
        """|AcpRt| (None when no cooperative attempt was made)."""
        return self.metrics.acceptance_ratio


@dataclass
class ChaosResult:
    """A full fault sweep over one scenario."""

    scenario_name: str
    rows: list[ChaosRow]

    def series(self, algorithm: str) -> list[tuple[float, float]]:
        """``(fault_rate, revenue)`` points for one algorithm."""
        return [
            (row.fault_rate, row.revenue)
            for row in self.rows
            if row.algorithm == algorithm
        ]

    def render(self) -> str:
        """The degradation table, ready to print."""
        table = TextTable(
            [
                "Algorithm",
                "Rate",
                "Revenue",
                "|CpR|",
                "AcpRt",
                "Retries",
                "FailedClaims",
                "Degraded",
                "Dropped",
                "Outage(s)",
            ],
            title=f"Chaos sweep — {self.scenario_name}",
        )
        for row in self.rows:
            metrics = row.metrics
            table.add_row(
                [
                    row.algorithm,
                    f"{row.fault_rate:g}",
                    round(row.revenue, 1),
                    round(row.completed),
                    (
                        f"{row.acceptance_ratio:.3f}"
                        if row.acceptance_ratio is not None
                        else "-"
                    ),
                    round(metrics.retries, 1),
                    round(metrics.failed_claims, 1),
                    round(metrics.degraded_decisions, 1),
                    round(metrics.dropped_workers, 1),
                    round(metrics.outage_seconds),
                ]
            )
        return table.render()


def _metrics_for(
    scenario: Scenario,
    algorithm: str,
    plan: FaultPlan,
    config: ExperimentConfig,
    validate: bool,
) -> AlgorithmMetrics:
    factory = algorithm_factory(algorithm)
    rows: list[AlgorithmMetrics] = []
    for seed in config.seeds:
        simulator_config = replace(
            config.simulator_config(seed),
            fault_plan=plan,
        )
        result: SimulationResult = Simulator(simulator_config).run(
            scenario, factory
        )
        if validate:
            validate_matching(result.all_records())
        rows.append(AlgorithmMetrics.from_simulation(result))
    return average_metrics(rows)


def run_fault_sweep(
    scenario: Scenario,
    algorithms: tuple[str, ...] = ("demcom", "ramcom"),
    rates: tuple[float, ...] = DEFAULT_RATES,
    config: ExperimentConfig | None = None,
    fault_seed: int = 0,
    validate: bool = True,
) -> ChaosResult:
    """Sweep fault rates for each algorithm on one scenario.

    The fault plan at each rate is :meth:`FaultPlan.uniform`, whose draws
    are monotone in the rate (raising it only adds faults), so the
    degradation curves are smooth rather than re-rolled per point.
    """
    config = config or ExperimentConfig()
    rows: list[ChaosRow] = []
    for algorithm in algorithms:
        for rate in rates:
            plan = FaultPlan.uniform(rate, seed=fault_seed)
            metrics = _metrics_for(scenario, algorithm, plan, config, validate)
            rows.append(
                ChaosRow(
                    algorithm=metrics.algorithm,
                    fault_rate=rate,
                    metrics=metrics,
                )
            )
    return ChaosResult(scenario_name=scenario.name, rows=rows)
