"""Service benchmark: throughput, latency, journal and event overhead.

Measures the serving layer the way an operator would size it: a synthetic
trace replayed through a :class:`~repro.service.gateway.MatchingGateway`
four ways —

``gateway``
    in-process, no durability: the serialized decision loop alone;
``gateway_journal``
    in-process with the ``COMWAL1`` write-ahead journal on (default
    ``interval`` fsync policy) — the cost of crash safety;
``gateway_events``
    in-process with the ``COMEVT1`` event log on (file-backed
    :class:`~repro.obs.events.EventLog`) — the cost of live ops;
``gateway_batched``
    in-process with micro-batched dispatch on (``batch_max=16``) and the
    ``auto`` payment backend, so queued requests are speculatively
    priced through the vectorized kernel
    (docs/SERVICE.md#micro-batched-dispatch) — the *benefit* side of
    the serving work.  This section runs on a *dense* companion trace
    (hundreds of workers in radius, so outer candidate sets clear the
    backends' ``vector_min_candidates`` crossover) paired back-to-back
    against a plain run of the same trace — the default trace's
    candidate sets are 1-3 workers, where the scalar path is the right
    choice and batching is outcome-neutral by design;
``tcp``
    the full JSONL-over-TCP stack on loopback.

Each section records sustained requests/sec and p50/p95/p99 end-to-end
latency.  The ``journal_overhead`` and ``event_overhead`` sections carry
**self-relative throughput ratios** (instrumented req/s ÷ plain req/s,
measured in the same run on the same machine, hence machine-independent)
which :func:`check_service_regression` gates against the budgets:
journaling may cost at most 15% of throughput, an enabled event log at
most 15%, and the *disabled* event path (the ``sink.enabled`` flag
checks every deployment pays) at most 5% of mean decision latency —
measured the same way as ``benchmarks/bench_telemetry_overhead.py``,
by micro-timing the flag-check shape against the null sink.
``com-repro bench --service --check BENCH_service.json`` runs the
gates; the repo-root ``BENCH_service.json`` is the checked-in reference.
"""

from __future__ import annotations

import asyncio
import gc
import json
from pathlib import Path

from repro.core import SimulatorConfig
from repro.core.events import EventKind
from repro.core.simulator import Scenario
from repro.service import (
    GatewayClient,
    JournalConfig,
    MatchingGateway,
    MatchingServer,
)
from repro.utils.timer import Stopwatch
from repro.workloads.synthetic import SyntheticWorkload, SyntheticWorkloadConfig

__all__ = [
    "BATCHING_GAIN_FLOOR",
    "EVENT_DISABLED_BUDGET",
    "EVENT_OVERHEAD_BUDGET",
    "JOURNAL_OVERHEAD_BUDGET",
    "run_service_benchmark",
    "render_service_report",
    "check_service_regression",
]

#: Journaling may cost at most this fraction of unjournaled throughput.
JOURNAL_OVERHEAD_BUDGET = 0.15

#: A file-backed event log may cost at most this fraction of throughput.
EVENT_OVERHEAD_BUDGET = 0.15

#: With no sink attached, the event seam's flag checks may cost at most
#: this fraction of mean per-decision latency.
EVENT_DISABLED_BUDGET = 0.05

#: Micro-batched dispatch with the array backend must not fall below
#: plain one-at-a-time throughput (the gate only runs when numpy is
#: importable; outcomes are identical either way, only speed differs).
BATCHING_GAIN_FLOOR = 1.0

#: Batch ceiling the ``gateway_batched`` section runs with.
_BENCH_BATCH_MAX = 16

#: ``sink.enabled`` touchpoints a decision pays with events off: the
#: decision-loop emit guard, the resolution-hook guard, the admission
#: shed guard, and the periodic flush guard.
_EVENT_FLAG_CHECKS_PER_DECISION = 4


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _build(requests: int, workers: int) -> tuple[Scenario, SimulatorConfig]:
    scenario = SyntheticWorkload(
        SyntheticWorkloadConfig(
            request_count=requests, worker_count=workers, horizon_seconds=7200.0
        )
    ).build(seed=5)
    config = SimulatorConfig(measure_response_time=False)
    return scenario, config


def _build_dense() -> Scenario:
    """The ``gateway_batched`` companion trace: a small dense city.

    800 workers in a 10 km box with 3 km service radii put the mean
    outer candidate set around 40 workers — past the array backends'
    ``vector_min_candidates`` crossover, which the default trace (1-3
    candidates) never reaches.  Quick and full modes share this trace so
    their batching ratios are directly comparable.
    """
    return SyntheticWorkload(
        SyntheticWorkloadConfig(
            request_count=300,
            worker_count=800,
            radius_km=3.0,
            city_km=10.0,
            horizon_seconds=7200.0,
        )
    ).build(seed=5)


def _section(decided: int, elapsed: float, latencies: list[float]) -> dict:
    return {
        "requests": decided,
        "elapsed_seconds": elapsed,
        "requests_per_second": decided / elapsed if elapsed > 0 else 0.0,
        "latency_ms": {
            "p50": _percentile(latencies, 0.50),
            "p95": _percentile(latencies, 0.95),
            "p99": _percentile(latencies, 0.99),
        },
    }


#: Concurrent in-flight submissions while driving a gateway — models a
#: pipelined client population (and is what lets the journal group-commit).
_PIPELINE_WINDOW = 64


async def _drive_gateway(gateway: MatchingGateway, scenario: Scenario) -> dict:
    """Replay the trace with a bounded pipeline of in-flight submissions.

    Tasks are created in event order and the queue is unbounded, so jobs
    reach the decision loop in exactly trace order — the pipeline changes
    scheduling, never matching semantics.  This mirrors a live deployment
    (many connected clients, one serialized decision loop) rather than a
    lock-step caller that leaves the loop idle between events.
    """
    await gateway.start()
    latencies: list[float] = []
    watch = Stopwatch().start()
    decided = 0
    window: list[asyncio.Task] = []

    async def _settle() -> None:
        nonlocal decided
        for outcome in await asyncio.gather(*window):
            if outcome is not None:
                latencies.append(outcome.latency_ms)
                decided += 1
        window.clear()

    for event in scenario.events:
        gateway.clock.advance_to(event.time)  # type: ignore[attr-defined]
        if event.kind is EventKind.WORKER:
            window.append(
                asyncio.create_task(gateway.submit_worker(event.worker))
            )
        else:
            window.append(
                asyncio.create_task(gateway.submit_request(event.request))
            )
        if len(window) >= _PIPELINE_WINDOW:
            await _settle()
    await _settle()
    elapsed = watch.stop()
    await gateway.drain()
    return _section(decided, elapsed, latencies)


async def _bench_gateway(scenario: Scenario, config: SimulatorConfig) -> dict:
    """In-process: the decision loop without transport overhead."""
    gateway = MatchingGateway(scenario=scenario, algorithm="ramcom", config=config)
    return await _drive_gateway(gateway, scenario)


async def _bench_gateway_journaled(
    scenario: Scenario, config: SimulatorConfig, directory: str | Path
) -> dict:
    """In-process with the write-ahead journal on (interval fsync)."""
    gateway = MatchingGateway(
        scenario=scenario,
        algorithm="ramcom",
        config=config,
        journal=JournalConfig(directory=directory),
    )
    return await _drive_gateway(gateway, scenario)


async def _bench_gateway_events(
    scenario: Scenario, config: SimulatorConfig, directory: str | Path
) -> dict:
    """In-process with the ``COMEVT1`` event log writing to a file."""
    gateway = MatchingGateway(
        scenario=scenario,
        algorithm="ramcom",
        config=config,
        events=Path(directory) / "events.comevt",
    )
    return await _drive_gateway(gateway, scenario)


def _disabled_event_check_seconds(iterations: int = 200_000) -> float:
    """Per-touchpoint cost of the disabled event path's flag check.

    The seam with no sink attached is exactly ``if sink.enabled:`` on
    :data:`~repro.obs.events.NULL_EVENT_SINK` (``enabled`` is a class
    attribute reading ``False``) — time that shape directly, the same
    technique ``benchmarks/bench_telemetry_overhead.py`` uses for probes.
    """
    from repro.obs.events import NULL_EVENT_SINK

    sink = NULL_EVENT_SINK
    watch = Stopwatch().start()
    for _ in range(iterations):
        if sink.enabled:  # pragma: no cover - never taken
            sink.emit("decision", 0.0)
    return watch.stop() / iterations


async def _bench_gateway_batched(
    scenario: Scenario, config: SimulatorConfig
) -> dict:
    """In-process with micro-batching + array-backend speculation on."""
    from dataclasses import replace

    gateway = MatchingGateway(
        scenario=scenario,
        algorithm="ramcom",
        config=replace(config, payment_backend="auto"),
    )
    gateway.batch_max = _BENCH_BATCH_MAX
    return await _drive_gateway(gateway, scenario)


async def _bench_tcp(scenario: Scenario, config: SimulatorConfig) -> dict:
    """Full stack: JSONL codec + loopback TCP + the decision loop."""
    server = MatchingServer(
        MatchingGateway(scenario=scenario, algorithm="ramcom", config=config)
    )
    host, port = await server.start()
    latencies: list[float] = []
    decided = 0
    try:
        async with GatewayClient(host, port) as client:
            watch = Stopwatch().start()
            for event in scenario.events:
                if event.kind is EventKind.WORKER:
                    await client.submit_worker(event.worker)
                else:
                    outcome = await client.submit_request(event.request)
                    latencies.append(outcome.latency_ms)
                    decided += 1
            elapsed = watch.stop()
            await client.drain()
    finally:
        await server.stop()
    return _section(decided, elapsed, latencies)


#: Paired repetitions of the two in-process sections.  Shared-machine
#: noise only ever *slows* a run, so the reported row is the fastest rep
#: and the overhead ratio is the best adjacent plain/journaled pair —
#: the least-contaminated observation of the true durability cost.
_BENCH_REPS = 5


def run_service_benchmark(quick: bool = False) -> dict:
    """The full payload (all modes); ``quick`` shrinks the trace for CI."""
    import tempfile

    from repro.core.payment_kernel import resolve_backend

    requests, workers = (300, 100) if quick else (2000, 500)
    scenario, config = _build(requests, workers)
    dense_scenario = _build_dense()
    batched_backend = resolve_backend("auto")
    gateway_row: dict = {}
    journal_row: dict = {}
    events_row: dict = {}
    batched_row: dict = {}
    journal_ratios: list[float] = []
    event_ratios: list[float] = []
    batched_ratios: list[float] = []

    def _keep_best(best: dict, candidate: dict) -> dict:
        if (
            not best
            or candidate["requests_per_second"]
            > best["requests_per_second"]
        ):
            return candidate
        return best

    for __ in range(_BENCH_REPS):
        # Paired back-to-back so drift (thermal, noisy neighbours) hits
        # both sides of each ratio sample alike.
        plain = asyncio.run(_bench_gateway(scenario, config))
        with tempfile.TemporaryDirectory() as tmp:
            journaled = asyncio.run(
                _bench_gateway_journaled(scenario, config, tmp)
            )
        with tempfile.TemporaryDirectory() as tmp:
            evented = asyncio.run(
                _bench_gateway_events(scenario, config, tmp)
            )
        # The batching pair runs on the dense trace, with the garbage
        # collector paused: on small hosts GC pauses landing inside one
        # side of the pair dominate the ratio's noise.
        gc.collect()
        gc.disable()
        try:
            plain_dense = asyncio.run(_bench_gateway(dense_scenario, config))
            batched = asyncio.run(
                _bench_gateway_batched(dense_scenario, config)
            )
        finally:
            gc.enable()
        if plain["requests_per_second"] > 0:
            journal_ratios.append(
                journaled["requests_per_second"]
                / plain["requests_per_second"]
            )
            event_ratios.append(
                evented["requests_per_second"]
                / plain["requests_per_second"]
            )
        if plain_dense["requests_per_second"] > 0:
            batched_ratios.append(
                batched["requests_per_second"]
                / plain_dense["requests_per_second"]
            )
        gateway_row = _keep_best(gateway_row, plain)
        journal_row = _keep_best(journal_row, journaled)
        events_row = _keep_best(events_row, evented)
        batched_row = _keep_best(batched_row, batched)
    decision_seconds = (
        gateway_row["elapsed_seconds"] / gateway_row["requests"]
        if gateway_row.get("requests")
        else 0.0
    )
    disabled_fraction = (
        _EVENT_FLAG_CHECKS_PER_DECISION
        * _disabled_event_check_seconds()
        / decision_seconds
        if decision_seconds > 0
        else 0.0
    )
    return {
        "benchmark": "service",
        "schema": 4,
        "mode": "quick" if quick else "full",
        "gateway": gateway_row,
        "gateway_journal": journal_row,
        "gateway_events": events_row,
        "gateway_batched": batched_row,
        "batching_gain": {
            # Best paired batched/plain ratio on the dense trace
            # (self-relative, like the overhead gates).  Only gated when
            # the array backend is live — with pure Python, batching is
            # outcome-neutral but has no speculation to win time back
            # with.
            "throughput_ratio": max(batched_ratios) if batched_ratios else 0.0,
            "floor": BATCHING_GAIN_FLOOR,
            "batch_max": _BENCH_BATCH_MAX,
            "payment_backend": batched_backend,
            "trace": dense_scenario.name,
        },
        "journal_overhead": {
            # Self-relative (both sides of each pair measured back to
            # back on the same machine), so the ratio is comparable
            # across machines and robust to one-sided noise.  Capped at
            # 1.0: an instrumented run outpacing plain is noise, and a
            # >1.0 reference would poison the drift gate's floor.
            "throughput_ratio": min(1.0, max(journal_ratios))
            if journal_ratios
            else 0.0,
            "budget": JOURNAL_OVERHEAD_BUDGET,
        },
        "event_overhead": {
            "throughput_ratio": min(1.0, max(event_ratios))
            if event_ratios
            else 0.0,
            "budget": EVENT_OVERHEAD_BUDGET,
            "disabled": {
                # Flag-check cost as a fraction of mean decision latency
                # — what a deployment without --events pays for the seam.
                "fraction": disabled_fraction,
                "budget": EVENT_DISABLED_BUDGET,
                "flag_checks_per_decision": _EVENT_FLAG_CHECKS_PER_DECISION,
            },
        },
        "tcp": asyncio.run(_bench_tcp(scenario, config)),
    }


def render_service_report(payload: dict) -> str:
    lines = [f"service benchmark ({payload['mode']})"]
    for section in (
        "gateway",
        "gateway_journal",
        "gateway_events",
        "gateway_batched",
        "tcp",
    ):
        row = payload.get(section)
        if row is None:
            continue
        latency = row["latency_ms"]
        lines.append(
            f"  {section:15s} {row['requests_per_second']:>9.0f} req/s   "
            f"p50 {latency['p50']:.3f} ms   p95 {latency['p95']:.3f} ms   "
            f"p99 {latency['p99']:.3f} ms   ({row['requests']} requests)"
        )
    overhead = payload["journal_overhead"]
    lines.append(
        f"  journal overhead: {1.0 - overhead['throughput_ratio']:.1%} of "
        f"throughput (budget {overhead['budget']:.0%})"
    )
    events = payload.get("event_overhead")
    if events is not None:
        disabled = events["disabled"]
        lines.append(
            f"  event overhead:   {1.0 - events['throughput_ratio']:.1%} of "
            f"throughput enabled (budget {events['budget']:.0%}); "
            f"disabled path {disabled['fraction']:.2%} of decision latency "
            f"(budget {disabled['budget']:.0%})"
        )
    batching = payload.get("batching_gain")
    if batching is not None:
        trace = batching.get("trace")
        where = f" on {trace}" if trace else ""
        lines.append(
            f"  batching gain:    {batching['throughput_ratio']:.3f}x plain "
            f"throughput{where} (batch {batching['batch_max']}, "
            f"{batching['payment_backend']} backend, floor "
            f"{batching['floor']:.2f}x)"
        )
    return "\n".join(lines)


def check_service_regression(
    result: dict,
    reference_path: str | Path,
    tolerance: float = JOURNAL_OVERHEAD_BUDGET,
) -> list[str]:
    """Gate the instrumentation costs; returns human-readable failures.

    All gates run on machine-independent self-relative numbers: the
    journal and enabled-event-log throughput ratios must stay within
    their budgets and must not fall more than the budget below the
    checked-in reference's ratios (drift guard); the disabled event
    path's flag-check cost must stay within its fraction of mean
    decision latency.  Absolute req/s are reported but never gated on.
    """
    failures: list[str] = []
    reference = json.loads(Path(reference_path).read_text())

    def _gate_ratio(section: str, what: str, budget: float) -> None:
        measured = result[section]["throughput_ratio"]
        floor = 1.0 - budget
        if measured < floor:
            failures.append(
                f"{section}: {what} throughput is {measured:.3f}x plain, "
                f"below the {floor:.3f}x budget "
                f"({what} may cost at most {budget:.0%})"
            )
        reference_ratio = reference.get(section, {}).get("throughput_ratio")
        if reference_ratio is not None:
            drift_floor = reference_ratio * (1.0 - budget)
            if measured < drift_floor:
                failures.append(
                    f"{section}: ratio {measured:.3f}x fell below "
                    f"{drift_floor:.3f}x (reference {reference_ratio:.3f}x "
                    f"- {budget:.0%} tolerance)"
                )

    _gate_ratio("journal_overhead", "journaled", tolerance)
    events = result.get("event_overhead")
    if events is not None:
        _gate_ratio("event_overhead", "event-logged", events["budget"])
        disabled = events["disabled"]
        if disabled["fraction"] > disabled["budget"]:
            failures.append(
                f"event_overhead: disabled-path flag checks cost "
                f"{disabled['fraction']:.2%} of mean decision latency, "
                f"over the {disabled['budget']:.0%} budget"
            )
    batching = result.get("batching_gain")
    if (
        batching is not None
        and batching.get("payment_backend") == "numpy"
        and batching["throughput_ratio"] < batching["floor"]
    ):
        failures.append(
            f"batching_gain: batched throughput is "
            f"{batching['throughput_ratio']:.3f}x plain, below the "
            f"{batching['floor']:.2f}x floor (micro-batching with the "
            f"array backend must not lose throughput)"
        )
    return failures
