"""Service benchmark: throughput, latency, and journal overhead.

Measures the serving layer the way an operator would size it: a synthetic
trace replayed through a :class:`~repro.service.gateway.MatchingGateway`
three ways —

``gateway``
    in-process, no durability: the serialized decision loop alone;
``gateway_journal``
    in-process with the ``COMWAL1`` write-ahead journal on (default
    ``interval`` fsync policy) — the cost of crash safety;
``tcp``
    the full JSONL-over-TCP stack on loopback.

Each section records sustained requests/sec and p50/p95/p99 end-to-end
latency.  The ``journal_overhead`` section carries the **self-relative
throughput ratio** (journaled req/s ÷ unjournaled req/s, measured in the
same run on the same machine, hence machine-independent) which
:func:`check_service_regression` gates against the durability budget:
journaling may cost at most 15% of throughput.  ``com-repro bench
--service --check BENCH_service.json`` runs the gate; the repo-root
``BENCH_service.json`` is the checked-in reference.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

from repro.core import SimulatorConfig
from repro.core.events import EventKind
from repro.core.simulator import Scenario
from repro.service import (
    GatewayClient,
    JournalConfig,
    MatchingGateway,
    MatchingServer,
)
from repro.utils.timer import Stopwatch
from repro.workloads.synthetic import SyntheticWorkload, SyntheticWorkloadConfig

__all__ = [
    "JOURNAL_OVERHEAD_BUDGET",
    "run_service_benchmark",
    "render_service_report",
    "check_service_regression",
]

#: Journaling may cost at most this fraction of unjournaled throughput.
JOURNAL_OVERHEAD_BUDGET = 0.15


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _build(requests: int, workers: int) -> tuple[Scenario, SimulatorConfig]:
    scenario = SyntheticWorkload(
        SyntheticWorkloadConfig(
            request_count=requests, worker_count=workers, horizon_seconds=7200.0
        )
    ).build(seed=5)
    config = SimulatorConfig(measure_response_time=False)
    return scenario, config


def _section(decided: int, elapsed: float, latencies: list[float]) -> dict:
    return {
        "requests": decided,
        "elapsed_seconds": elapsed,
        "requests_per_second": decided / elapsed if elapsed > 0 else 0.0,
        "latency_ms": {
            "p50": _percentile(latencies, 0.50),
            "p95": _percentile(latencies, 0.95),
            "p99": _percentile(latencies, 0.99),
        },
    }


#: Concurrent in-flight submissions while driving a gateway — models a
#: pipelined client population (and is what lets the journal group-commit).
_PIPELINE_WINDOW = 64


async def _drive_gateway(gateway: MatchingGateway, scenario: Scenario) -> dict:
    """Replay the trace with a bounded pipeline of in-flight submissions.

    Tasks are created in event order and the queue is unbounded, so jobs
    reach the decision loop in exactly trace order — the pipeline changes
    scheduling, never matching semantics.  This mirrors a live deployment
    (many connected clients, one serialized decision loop) rather than a
    lock-step caller that leaves the loop idle between events.
    """
    await gateway.start()
    latencies: list[float] = []
    watch = Stopwatch().start()
    decided = 0
    window: list[asyncio.Task] = []

    async def _settle() -> None:
        nonlocal decided
        for outcome in await asyncio.gather(*window):
            if outcome is not None:
                latencies.append(outcome.latency_ms)
                decided += 1
        window.clear()

    for event in scenario.events:
        gateway.clock.advance_to(event.time)  # type: ignore[attr-defined]
        if event.kind is EventKind.WORKER:
            window.append(
                asyncio.create_task(gateway.submit_worker(event.worker))
            )
        else:
            window.append(
                asyncio.create_task(gateway.submit_request(event.request))
            )
        if len(window) >= _PIPELINE_WINDOW:
            await _settle()
    await _settle()
    elapsed = watch.stop()
    await gateway.drain()
    return _section(decided, elapsed, latencies)


async def _bench_gateway(scenario: Scenario, config: SimulatorConfig) -> dict:
    """In-process: the decision loop without transport overhead."""
    gateway = MatchingGateway(scenario=scenario, algorithm="ramcom", config=config)
    return await _drive_gateway(gateway, scenario)


async def _bench_gateway_journaled(
    scenario: Scenario, config: SimulatorConfig, directory: str | Path
) -> dict:
    """In-process with the write-ahead journal on (interval fsync)."""
    gateway = MatchingGateway(
        scenario=scenario,
        algorithm="ramcom",
        config=config,
        journal=JournalConfig(directory=directory),
    )
    return await _drive_gateway(gateway, scenario)


async def _bench_tcp(scenario: Scenario, config: SimulatorConfig) -> dict:
    """Full stack: JSONL codec + loopback TCP + the decision loop."""
    server = MatchingServer(
        MatchingGateway(scenario=scenario, algorithm="ramcom", config=config)
    )
    host, port = await server.start()
    latencies: list[float] = []
    decided = 0
    try:
        async with GatewayClient(host, port) as client:
            watch = Stopwatch().start()
            for event in scenario.events:
                if event.kind is EventKind.WORKER:
                    await client.submit_worker(event.worker)
                else:
                    outcome = await client.submit_request(event.request)
                    latencies.append(outcome.latency_ms)
                    decided += 1
            elapsed = watch.stop()
            await client.drain()
    finally:
        await server.stop()
    return _section(decided, elapsed, latencies)


#: Paired repetitions of the two in-process sections.  Shared-machine
#: noise only ever *slows* a run, so the reported row is the fastest rep
#: and the overhead ratio is the best adjacent plain/journaled pair —
#: the least-contaminated observation of the true durability cost.
_BENCH_REPS = 5


def run_service_benchmark(quick: bool = False) -> dict:
    """The full payload (all modes); ``quick`` shrinks the trace for CI."""
    import tempfile

    requests, workers = (300, 100) if quick else (2000, 500)
    scenario, config = _build(requests, workers)
    gateway_row: dict = {}
    journal_row: dict = {}
    ratios: list[float] = []
    for __ in range(_BENCH_REPS):
        # Paired back-to-back so drift (thermal, noisy neighbours) hits
        # both sides of each ratio sample alike.
        plain = asyncio.run(_bench_gateway(scenario, config))
        with tempfile.TemporaryDirectory() as tmp:
            journaled = asyncio.run(
                _bench_gateway_journaled(scenario, config, tmp)
            )
        if plain["requests_per_second"] > 0:
            ratios.append(
                journaled["requests_per_second"]
                / plain["requests_per_second"]
            )
        if (
            not gateway_row
            or plain["requests_per_second"]
            > gateway_row["requests_per_second"]
        ):
            gateway_row = plain
        if (
            not journal_row
            or journaled["requests_per_second"]
            > journal_row["requests_per_second"]
        ):
            journal_row = journaled
    return {
        "benchmark": "service",
        "schema": 2,
        "mode": "quick" if quick else "full",
        "gateway": gateway_row,
        "gateway_journal": journal_row,
        "journal_overhead": {
            # Self-relative (both sides of each pair measured back to
            # back on the same machine), so the ratio is comparable
            # across machines and robust to one-sided noise.
            "throughput_ratio": max(ratios) if ratios else 0.0,
            "budget": JOURNAL_OVERHEAD_BUDGET,
        },
        "tcp": asyncio.run(_bench_tcp(scenario, config)),
    }


def render_service_report(payload: dict) -> str:
    lines = [f"service benchmark ({payload['mode']})"]
    for section in ("gateway", "gateway_journal", "tcp"):
        row = payload[section]
        latency = row["latency_ms"]
        lines.append(
            f"  {section:15s} {row['requests_per_second']:>9.0f} req/s   "
            f"p50 {latency['p50']:.3f} ms   p95 {latency['p95']:.3f} ms   "
            f"p99 {latency['p99']:.3f} ms   ({row['requests']} requests)"
        )
    overhead = payload["journal_overhead"]
    lines.append(
        f"  journal overhead: {1.0 - overhead['throughput_ratio']:.1%} of "
        f"throughput (budget {overhead['budget']:.0%})"
    )
    return "\n".join(lines)


def check_service_regression(
    result: dict,
    reference_path: str | Path,
    tolerance: float = JOURNAL_OVERHEAD_BUDGET,
) -> list[str]:
    """Gate the durability cost; returns human-readable failures.

    Two checks, both on the machine-independent self-relative ratio:
    the fresh run must keep journaled throughput within ``tolerance``
    of unjournaled (the budget), and must not fall more than the budget
    below the checked-in reference's ratio (drift guard).  Absolute
    req/s are reported but never gated on.
    """
    failures: list[str] = []
    measured = result["journal_overhead"]["throughput_ratio"]
    floor = 1.0 - tolerance
    if measured < floor:
        failures.append(
            f"journal_overhead: journaled throughput is {measured:.3f}x "
            f"unjournaled, below the {floor:.3f}x budget "
            f"(journaling may cost at most {tolerance:.0%})"
        )
    reference = json.loads(Path(reference_path).read_text())
    reference_ratio = reference.get("journal_overhead", {}).get(
        "throughput_ratio"
    )
    if reference_ratio is not None:
        drift_floor = reference_ratio * (1.0 - tolerance)
        if measured < drift_floor:
            failures.append(
                f"journal_overhead: ratio {measured:.3f}x fell below "
                f"{drift_floor:.3f}x (reference {reference_ratio:.3f}x "
                f"- {tolerance:.0%} tolerance)"
            )
    return failures
