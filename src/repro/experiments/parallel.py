"""Process-parallel experiment execution.

The experiment harness averages every online algorithm over several seeds
(:class:`~repro.experiments.harness.ExperimentConfig.seeds`), and the table
/ figure studies sweep several algorithms over the same scenario — a grid
of *(algorithm, seed)* cells, each of which is a **pure function** of
``(scenario, config, algorithm, seed)``:

* every stochastic draw flows from the cell's seed through the labelled
  SHA-256 streams of :mod:`repro.utils.rng` (``derive_seed`` /
  :class:`~repro.utils.rng.SeedSequence`), so a cell computes the same
  bytes in any process;
* the behaviour oracle realises reservations as pure functions of
  ``(oracle seed, worker, request)``, so cells share no mutable state
  that could influence results.

:class:`ParallelRunner` therefore fans the cell grid across a
``multiprocessing`` pool and merges the per-cell
:class:`~repro.experiments.metrics.AlgorithmMetrics` rows **in the same
deterministic order the serial harness uses** (algorithms in request
order, seeds in ``config.seeds`` order) — float accumulation order
included — so parallel output is byte-identical to serial output for
every deterministic field.  The only exceptions are wall-clock-derived
measurements (``response_time_ms`` and the
:data:`repro.obs.WALL_CLOCK_FAMILIES` histogram families), which differ
between any two runs, serial or not; strip them with
:meth:`repro.obs.TelemetrySummary.without_wall_clock` (or run with
``measure_response_time=False``) for byte-level comparisons.  The
identity is pinned by ``tests/test_experiments_parallel.py``.

Mergeable telemetry rides along unchanged: each cell's
:class:`~repro.obs.MetricsSnapshot` is produced in the child process and
pooled by :func:`~repro.experiments.metrics.average_metrics` exactly as
in the serial path (snapshot merging is associative and deterministic).
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import replace

from repro.core.registry import algorithm_factory
from repro.core.simulator import Scenario, Simulator
from repro.errors import ConfigurationError
from repro.experiments.harness import (
    OFFLINE_NAME,
    ExperimentConfig,
    run_algorithm,
)
from repro.experiments.metrics import AlgorithmMetrics, average_metrics

__all__ = ["ParallelRunner", "resolve_jobs", "run_cell"]

#: Cell key: ``(algorithm, seed)``; OFF's single deterministic solve uses
#: ``seed=None``.
CellKey = tuple[str, int | None]


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a job-count request.

    ``None`` or ``0`` means "one worker per CPU"; anything else must be a
    positive count.
    """
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    return jobs


def run_cell(
    scenario: Scenario,
    algorithm: str,
    seed: int | None,
    config: ExperimentConfig,
) -> AlgorithmMetrics:
    """Execute one *(algorithm, seed)* cell — the pool's unit of work.

    A module-level function so it pickles under every multiprocessing
    start method.  ``seed=None`` runs OFF's single deterministic solve;
    otherwise the body is exactly one iteration of the serial harness's
    per-seed loop, so the row it returns is the row serial would have
    produced.
    """
    if seed is None:
        return run_algorithm(scenario, algorithm, config)
    factory = algorithm_factory(algorithm)
    simulator = Simulator(config.simulator_config(seed))
    return AlgorithmMetrics.from_simulation(simulator.run(scenario, factory))


class ParallelRunner:
    """Fan experiment cells across a process pool, merge deterministically.

    Parameters
    ----------
    jobs:
        Pool size; ``None``/``0`` uses every CPU.  ``1`` degenerates to
        the serial path in-process (no pool is created).
    mp_context:
        ``multiprocessing`` start-method name.  Defaults to ``"fork"``
        where available (cheap, inherits the loaded interpreter) and the
        platform default elsewhere; results are identical either way
        because cells are pure.
    """

    def __init__(self, jobs: int | None = None, mp_context: str | None = None):
        self.jobs = resolve_jobs(jobs)
        if mp_context is None and "fork" in multiprocessing.get_all_start_methods():
            mp_context = "fork"
        self.mp_context = mp_context

    def _cells(
        self, algorithms: list[str], config: ExperimentConfig
    ) -> list[CellKey]:
        """The grid, in the serial harness's merge order."""
        cells: list[CellKey] = []
        for name in algorithms:
            if name.lower() == OFFLINE_NAME:
                cells.append((name, None))
                continue
            if not config.seeds:
                raise ConfigurationError("ExperimentConfig.seeds must be non-empty")
            cells.extend((name, seed) for seed in config.seeds)
        return cells

    def run_comparison(
        self,
        scenario: Scenario,
        algorithms: list[str],
        config: ExperimentConfig | None = None,
    ) -> list[AlgorithmMetrics]:
        """Parallel, byte-identical counterpart of
        :func:`repro.experiments.harness.run_comparison`."""
        config = config or ExperimentConfig()
        # Children must never recurse into the parallel path.
        config = replace(config, jobs=1)
        cells = self._cells(algorithms, config)
        if self.jobs <= 1 or len(cells) <= 1:
            results = [
                run_cell(scenario, name, seed, config) for name, seed in cells
            ]
        else:
            context = (
                multiprocessing.get_context(self.mp_context)
                if self.mp_context is not None
                else multiprocessing
            )
            workers = min(self.jobs, len(cells))
            with context.Pool(processes=workers) as pool:
                results = pool.starmap(
                    run_cell,
                    [(scenario, name, seed, config) for name, seed in cells],
                    chunksize=1,
                )
        # Merge per algorithm, seeds in config.seeds order — exactly the
        # serial accumulation order, so averages are bit-identical.
        rows: list[AlgorithmMetrics] = []
        cursor = 0
        for name in algorithms:
            if name.lower() == OFFLINE_NAME:
                rows.append(results[cursor])
                cursor += 1
                continue
            per_seed = results[cursor : cursor + len(config.seeds)]
            cursor += len(config.seeds)
            rows.append(average_metrics(per_seed))
        return rows

    def run_algorithm(
        self,
        scenario: Scenario,
        algorithm: str,
        config: ExperimentConfig | None = None,
    ) -> AlgorithmMetrics:
        """Parallel counterpart of
        :func:`repro.experiments.harness.run_algorithm` (seeds fan out)."""
        return self.run_comparison(scenario, [algorithm], config)[0]
