"""The one-command full reproduction: every table, every figure, one report.

:func:`reproduce_all` regenerates Tables V-VII, all twelve Fig.-5 panels
and the competitive-ratio studies, saves the raw artifacts (JSON tables,
CSV panels) under an output directory, and writes a single markdown report
(`REPORT.md`) with the rendered tables and ASCII charts — the programmatic
equivalent of running the whole benchmark suite, usable from scripts and
the ``com-repro reproduce`` subcommand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.experiments.competitive import (
    RAMCOM_THEORETICAL_CR,
    random_order_ratio,
)
from repro.experiments.figures import FigurePanel, run_figure5_axis
from repro.experiments.harness import ExperimentConfig
from repro.experiments.reporting import save_panel, save_table
from repro.experiments.tables import TABLE_IDS, TableResult, run_city_table
from repro.utils.ascii_chart import render_panel
from repro.utils.timer import Stopwatch
from repro.utils.tables import TextTable
from repro.workloads import SyntheticWorkload, SyntheticWorkloadConfig

__all__ = ["ReproductionRun", "reproduce_all"]

#: Reduced sweep grids for the driver (the full Table-IV tails take hours
#: in pure Python; pass ``full_grids=True`` for everything).
REDUCED_SWEEPS = {
    "requests": (500, 1000, 2500, 5000),
    "workers": (100, 200, 500, 1000),
    "radius": (0.5, 1.0, 1.5, 2.0, 2.5),
}
FULL_SWEEPS = {
    "requests": (500, 1000, 2500, 5000, 10_000, 20_000, 50_000, 100_000),
    "workers": (100, 200, 500, 1000, 2500, 5000, 10_000, 20_000),
    "radius": (0.5, 1.0, 1.5, 2.0, 2.5),
}


@dataclass
class ReproductionRun:
    """Everything one full reproduction produced."""

    tables: dict[str, TableResult] = field(default_factory=dict)
    panels: dict[str, FigurePanel] = field(default_factory=dict)
    cr_rows: list[tuple[str, float, float]] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    report_path: Path | None = None


def reproduce_all(
    output_dir: str | Path,
    scale: float = 0.01,
    seeds: int = 2,
    full_grids: bool = False,
    cr_trials: int = 40,
) -> ReproductionRun:
    """Run the complete evaluation and write ``REPORT.md`` + artifacts."""
    output = Path(output_dir)
    output.mkdir(parents=True, exist_ok=True)
    config = ExperimentConfig(seeds=tuple(range(seeds)), service_duration=1800.0)
    run = ReproductionRun()
    run_watch = Stopwatch().start()
    sections: list[str] = [
        "# COM reproduction report",
        "",
        f"scale={scale:g}, seed-days={seeds}, "
        f"sweeps={'full' if full_grids else 'reduced'}",
        "",
    ]

    # --- Tables V-VII ------------------------------------------------------
    sections.append("## Tables V-VII")
    for table_id in TABLE_IDS:
        result = run_city_table(table_id, scale=scale, config=config)
        run.tables[table_id] = result
        save_table(result, output)
        sections.extend(["", "```", result.render(), "```"])

    # --- Fig. 5 -------------------------------------------------------------
    sections.append("\n## Figure 5")
    sweeps = FULL_SWEEPS if full_grids else REDUCED_SWEEPS
    for axis in ("requests", "workers", "radius"):
        panels = run_figure5_axis(axis, values=sweeps[axis], config=config)
        for metric, panel in panels.items():
            run.panels[panel.panel_id] = panel
            save_panel(panel, output)
            sections.extend(["", "```", render_panel(panel), "```"])

    # --- Competitive ratios ---------------------------------------------------
    sections.append("\n## Competitive ratios (random-order model)")
    cr_scenario = SyntheticWorkload(
        SyntheticWorkloadConfig(
            request_count=30, worker_count=12, city_km=4.0, radius_km=1.5
        )
    ).build(seed=3)
    cr_table = TextTable(
        ["Algorithm", "Mean ratio", "Min ratio", "1/(8e) bound"],
    )
    for name in ("tota", "demcom", "ramcom"):
        report = random_order_ratio(cr_scenario, name, trials=cr_trials)
        run.cr_rows.append((name, report.expectation, report.minimum))
        cr_table.add_row(
            [name, report.expectation, report.minimum, RAMCOM_THEORETICAL_CR]
        )
    sections.extend(["", "```", cr_table.render(), "```", ""])

    run.elapsed_seconds = run_watch.stop()
    sections.append(f"\ncompleted in {run.elapsed_seconds:.1f}s")
    run.report_path = output / "REPORT.md"
    run.report_path.write_text("\n".join(sections) + "\n")
    return run
