"""Metric rows — the columns of the paper's Tables V-VII.

One :class:`AlgorithmMetrics` holds everything a table row reports for one
algorithm on one scenario:

* ``revenue[platform]`` — the headline per-platform revenue.  As shown in
  EXPERIMENTS.md, the paper's per-platform revenue numbers are only
  mutually consistent if each platform's figure *includes the income its
  workers earn serving the other platform's requests* (lender income), so
  the headline revenue is ``Definition-2.5 revenue + lender income``; the
  pure Definition-2.5 number is kept in ``platform_revenue``.
* ``response_time_ms`` — mean per-request decision latency (for OFF: solve
  time amortized per request, as the paper reports it).
* ``memory_mb`` — the analytic footprint of the live data structures.
* ``completed[platform]`` — |CpR| per platform.
* ``cooperative`` — |CoR| across both platforms.
* ``acceptance_ratio`` — |AcpRt| (None for OFF/TOTA, printed as ``-``).
* ``payment_rate`` — mean v'_r / v_r (None for OFF/TOTA).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.baselines.offline import OfflineSolution
from repro.core.simulator import SimulationResult
from repro.obs import TelemetrySummary

__all__ = ["AlgorithmMetrics", "average_metrics"]


@dataclass
class AlgorithmMetrics:
    """One table row: an algorithm's measured behaviour on a scenario."""

    algorithm: str
    scenario: str
    revenue: dict[str, float] = field(default_factory=dict)
    platform_revenue: dict[str, float] = field(default_factory=dict)
    lender_income: dict[str, float] = field(default_factory=dict)
    completed: dict[str, int] = field(default_factory=dict)
    response_time_ms: float = 0.0
    memory_mb: float = 0.0
    cooperative: int = 0
    acceptance_ratio: float | None = None
    payment_rate: float | None = None
    runs: int = 1
    #: Resilience accounting (all zero unless a fault plan was active).
    retries: float = 0.0
    failed_claims: float = 0.0
    degraded_decisions: float = 0.0
    dropped_workers: float = 0.0
    outage_seconds: float = 0.0
    #: Telemetry digest (``None`` unless the run had a telemetry bundle).
    #: Averaged rows pool summaries across seeds (counts sum).
    telemetry: TelemetrySummary | None = None

    @property
    def total_revenue(self) -> float:
        """Headline revenue summed over platforms."""
        return sum(self.revenue.values())

    @property
    def total_completed(self) -> float:
        """|CpR| summed over platforms."""
        return sum(self.completed.values())

    @classmethod
    def from_simulation(cls, result: SimulationResult) -> "AlgorithmMetrics":
        """Build a row from an online run."""
        revenue: dict[str, float] = {}
        platform_revenue: dict[str, float] = {}
        lender_income: dict[str, float] = {}
        completed: dict[str, int] = {}
        for platform_id, outcome in result.platforms.items():
            ledger = outcome.ledger
            platform_revenue[platform_id] = ledger.revenue
            lender_income[platform_id] = ledger.total_lender_income
            revenue[platform_id] = ledger.revenue + ledger.total_lender_income
            completed[platform_id] = ledger.completed_requests
        return cls(
            algorithm=result.algorithm_name,
            scenario=result.scenario_name,
            revenue=revenue,
            platform_revenue=platform_revenue,
            lender_income=lender_income,
            completed=completed,
            response_time_ms=result.mean_response_time_ms,
            memory_mb=result.memory_bytes / (1024 * 1024),
            cooperative=result.total_cooperative,
            acceptance_ratio=result.overall_acceptance_ratio,
            payment_rate=result.overall_payment_rate,
            retries=float(result.total_retries),
            failed_claims=float(result.total_failed_claims),
            degraded_decisions=float(result.total_degraded_decisions),
            dropped_workers=float(result.total_dropped_workers),
            outage_seconds=result.total_outage_seconds,
            telemetry=result.telemetry,
        )

    @classmethod
    def from_offline(
        cls, solution: OfflineSolution, memory_mb: float = 0.0
    ) -> "AlgorithmMetrics":
        """Build a row from an OFF solve."""
        revenue: dict[str, float] = {}
        platform_revenue: dict[str, float] = {}
        lender_income: dict[str, float] = {}
        completed: dict[str, int] = {}
        for platform_id, ledger in solution.ledgers.items():
            platform_revenue[platform_id] = ledger.revenue
            lender_income[platform_id] = ledger.total_lender_income
            revenue[platform_id] = ledger.revenue + ledger.total_lender_income
            completed[platform_id] = ledger.completed_requests
        return cls(
            algorithm=solution.algorithm_name,
            scenario=solution.scenario_name,
            revenue=revenue,
            platform_revenue=platform_revenue,
            lender_income=lender_income,
            completed=completed,
            response_time_ms=solution.mean_response_time_ms,
            memory_mb=memory_mb,
            cooperative=sum(
                ledger.cooperative_requests for ledger in solution.ledgers.values()
            ),
            acceptance_ratio=None,
            payment_rate=None,
        )


def average_metrics(rows: Sequence[AlgorithmMetrics]) -> AlgorithmMetrics:
    """Average rows from repeated runs (different seeds) of one algorithm.

    The paper's tables are per-day averages over a month of trace days; our
    tables average over seeds the same way.  ``None`` metrics stay ``None``
    only if no run produced a value.
    """
    if not rows:
        raise ValueError("average_metrics needs at least one row")
    first = rows[0]
    if any(row.algorithm != first.algorithm for row in rows):
        raise ValueError("cannot average rows from different algorithms")
    count = len(rows)
    platform_ids = list(first.revenue.keys())
    averaged = AlgorithmMetrics(
        algorithm=first.algorithm,
        scenario=first.scenario,
        runs=count,
    )
    for platform_id in platform_ids:
        averaged.revenue[platform_id] = (
            sum(row.revenue.get(platform_id, 0.0) for row in rows) / count
        )
        averaged.platform_revenue[platform_id] = (
            sum(row.platform_revenue.get(platform_id, 0.0) for row in rows) / count
        )
        averaged.lender_income[platform_id] = (
            sum(row.lender_income.get(platform_id, 0.0) for row in rows) / count
        )
        averaged.completed[platform_id] = round(
            sum(row.completed.get(platform_id, 0) for row in rows) / count
        )
    averaged.response_time_ms = sum(row.response_time_ms for row in rows) / count
    averaged.memory_mb = sum(row.memory_mb for row in rows) / count
    averaged.cooperative = round(sum(row.cooperative for row in rows) / count)
    acceptance = [r.acceptance_ratio for r in rows if r.acceptance_ratio is not None]
    averaged.acceptance_ratio = (
        sum(acceptance) / len(acceptance) if acceptance else None
    )
    payment = [r.payment_rate for r in rows if r.payment_rate is not None]
    averaged.payment_rate = sum(payment) / len(payment) if payment else None
    for name in (
        "retries",
        "failed_claims",
        "degraded_decisions",
        "dropped_workers",
        "outage_seconds",
    ):
        setattr(averaged, name, sum(getattr(row, name) for row in rows) / count)
    summaries = [row.telemetry for row in rows if row.telemetry is not None]
    if summaries:
        pooled = summaries[0]
        for summary in summaries[1:]:
            pooled = pooled.merge(summary)
        averaged.telemetry = pooled
    return averaged
