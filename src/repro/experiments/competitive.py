"""Empirical competitive-ratio studies (Theorems 1 and 2).

The paper analyses two CR notions (Definitions 2.7/2.8):

* **Adversarial** — the worst ratio over all arrival orders.  Theorem 1:
  DemCOM's adversarial CR is unbounded (a bad order starves it
  arbitrarily); we exhibit this with both exhaustive order enumeration on
  tiny instances and a crafted worst-case family
  (:func:`demcom_worst_case_family`).
* **Random order** — the expected ratio over uniformly random arrival
  orders.  Theorem 2: RamCOM's CR reaches ``1/(8e) ~= 0.046``; the random-
  order study checks the empirical expectation clears that bound.

Both studies run *without* worker reentry so OFF (exact max-weight
matching over identical reservation draws) is the true optimum.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

from repro.baselines.offline import solve_offline
from repro.core.registry import algorithm_factory
from repro.core.simulator import Scenario, Simulator, SimulatorConfig
from repro.errors import ConfigurationError
from repro.utils.rng import derive_rng

__all__ = [
    "CompetitiveRatioReport",
    "adversarial_ratio",
    "random_order_ratio",
    "RAMCOM_THEORETICAL_CR",
]

#: Theorem 2's bound: 1 / (8e).
RAMCOM_THEORETICAL_CR = 1.0 / (8.0 * math.e)


@dataclass
class CompetitiveRatioReport:
    """Outcome of one CR study."""

    algorithm: str
    model: str  # "adversarial" | "random-order"
    optimum: float
    ratios: list[float] = field(default_factory=list)

    @property
    def minimum(self) -> float:
        """The worst observed ratio (the adversarial statistic)."""
        return min(self.ratios) if self.ratios else 0.0

    @property
    def expectation(self) -> float:
        """The mean observed ratio (the random-order statistic)."""
        if not self.ratios:
            return 0.0
        return sum(self.ratios) / len(self.ratios)

    @property
    def orders_evaluated(self) -> int:
        """How many arrival orders were run."""
        return len(self.ratios)


def _run_on_order(
    scenario: Scenario,
    order: list[int],
    algorithm: str,
    seed: int,
) -> tuple[float, float]:
    """Return ``(online_revenue, offline_optimum)`` for one arrival order.

    Both Definitions 2.7 and 2.8 compare the online result against the
    offline optimum *of the same input*: the arrival order constrains OPT
    too (a worker arriving after a request cannot serve it even offline),
    so OPT must be recomputed per order.
    """
    reordered = Scenario(
        events=scenario.events.reordered(order),
        oracle=scenario.oracle,
        platform_ids=scenario.platform_ids,
        value_upper_bound=scenario.value_upper_bound,
        name=scenario.name,
    )
    simulator = Simulator(
        SimulatorConfig(seed=seed, worker_reentry=False, measure_response_time=False)
    )
    result = simulator.run(reordered, algorithm_factory(algorithm))
    optimum = solve_offline(reordered).total_revenue
    return result.total_revenue, optimum


def adversarial_ratio(
    scenario: Scenario, algorithm: str, max_orders: int = 5040, seed: int = 0
) -> CompetitiveRatioReport:
    """Min ratio over arrival orders (exhaustive for small instances).

    Only *valid* online inputs are enumerated: every permutation of the
    event list (a worker may arrive after requests it then cannot serve —
    that is exactly the adversary's power).  For more than ``max_orders``
    permutations the enumeration is truncated deterministically.
    """
    event_count = len(scenario.events)
    if event_count > 9:
        raise ConfigurationError(
            "adversarial enumeration is exponential; use <= 9 events "
            f"(got {event_count})"
        )
    base_optimum = solve_offline(scenario).total_revenue
    report = CompetitiveRatioReport(
        algorithm=algorithm, model="adversarial", optimum=base_optimum
    )
    for index, order in enumerate(itertools.permutations(range(event_count))):
        if index >= max_orders:
            break
        revenue, optimum = _run_on_order(scenario, list(order), algorithm, seed)
        if optimum <= 0:
            continue  # an order where nothing is feasible bounds nothing
        report.ratios.append(revenue / optimum)
    if not report.ratios:
        raise ConfigurationError("no order had a positive offline optimum")
    return report


def random_order_ratio(
    scenario: Scenario, algorithm: str, trials: int = 100, seed: int = 0
) -> CompetitiveRatioReport:
    """Expected ratio over uniformly random arrival orders."""
    if trials < 1:
        raise ConfigurationError("trials must be >= 1")
    base_optimum = solve_offline(scenario).total_revenue
    report = CompetitiveRatioReport(
        algorithm=algorithm, model="random-order", optimum=base_optimum
    )
    event_count = len(scenario.events)
    for trial in range(trials):
        rng = derive_rng(seed, f"cr-order/{trial}")
        order = list(range(event_count))
        rng.shuffle(order)
        revenue, optimum = _run_on_order(scenario, order, algorithm, seed=trial)
        if optimum <= 0:
            continue
        report.ratios.append(revenue / optimum)
    if not report.ratios:
        raise ConfigurationError("no sampled order had a positive offline optimum")
    return report


def demcom_worst_case_family(epsilon: float = 0.01):
    """The Theorem-1 adversarial family showing DemCOM's CR is unbounded.

    Construction (one platform, no outer workers — greedy's classic trap):
    a single worker covers two requests; a cheap request of value
    ``epsilon`` arrives first and greedy burns the worker on it, then the
    valuable request (value 1) arrives and is rejected.  OPT serves the
    valuable one, so the ratio is ``epsilon -> 0``.

    Returns ``(scenario, expected_ratio)``; the bench asserts the measured
    ratio matches.
    """
    from repro.behavior.distributions import UniformDistribution
    from repro.behavior.worker_model import BehaviorOracle, WorkerBehavior
    from repro.core.entities import Request, Worker
    from repro.core.events import EventStream
    from repro.geo.point import Point

    if not 0 < epsilon < 1:
        raise ConfigurationError("epsilon must be in (0, 1)")
    worker = Worker("w0", "A", 0.0, Point(0.0, 0.0), service_radius=1.0)
    cheap = Request("r-cheap", "A", 1.0, Point(0.0, 0.1), value=epsilon)
    rich = Request("r-rich", "A", 2.0, Point(0.0, -0.1), value=1.0)
    oracle = BehaviorOracle(seed=0)
    oracle.register(WorkerBehavior("w0", UniformDistribution(0.9, 1.0), [1.0]))
    scenario = Scenario(
        events=EventStream.from_entities([worker], [cheap, rich]),
        oracle=oracle,
        platform_ids=["A"],
        value_upper_bound=1.0,
        name=f"demcom-worst-case-eps{epsilon:g}",
    )
    expected_ratio = epsilon / 1.0
    return scenario, expected_ratio
