"""Persist experiment results to disk (CSV / JSON).

The benches print tables; this module lets scripts and the CLI also save
them under a results directory for downstream plotting — one file per
artifact, named after the experiment id.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.chaos import ChaosResult
from repro.experiments.figures import FigurePanel
from repro.experiments.metrics import AlgorithmMetrics
from repro.experiments.tables import TableResult

__all__ = ["save_table", "save_panel", "save_chaos", "metrics_to_dict"]


def metrics_to_dict(row: AlgorithmMetrics) -> dict:
    """A JSON-ready view of one metric row."""
    return {
        "algorithm": row.algorithm,
        "scenario": row.scenario,
        "revenue": row.revenue,
        "platform_revenue": row.platform_revenue,
        "lender_income": row.lender_income,
        "completed": row.completed,
        "response_time_ms": row.response_time_ms,
        "memory_mb": row.memory_mb,
        "cooperative": row.cooperative,
        "acceptance_ratio": row.acceptance_ratio,
        "payment_rate": row.payment_rate,
        "runs": row.runs,
        "retries": row.retries,
        "failed_claims": row.failed_claims,
        "degraded_decisions": row.degraded_decisions,
        "dropped_workers": row.dropped_workers,
        "outage_seconds": row.outage_seconds,
        "telemetry": row.telemetry.as_dict() if row.telemetry is not None else None,
    }


def save_table(result: TableResult, directory: str | Path) -> Path:
    """Write one regenerated table as JSON; returns the file path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"table_{result.table_id}_{result.pair}.json"
    payload = {
        "table_id": result.table_id,
        "pair": result.pair,
        "scale": result.scale,
        "platform_ids": result.platform_ids,
        "rows": [metrics_to_dict(row) for row in result.rows],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def save_chaos(result: ChaosResult, directory: str | Path) -> Path:
    """Write one fault sweep as JSON; returns the file path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    slug = result.scenario_name.replace("/", "-").replace(" ", "_")
    path = directory / f"chaos_{slug}.json"
    payload = {
        "scenario": result.scenario_name,
        "rows": [
            {"fault_rate": row.fault_rate, **metrics_to_dict(row.metrics)}
            for row in result.rows
        ],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def save_panel(panel: FigurePanel, directory: str | Path) -> Path:
    """Write one figure panel as CSV (x column + one column per series)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    slug = panel.panel_id.replace("(", "").replace(")", "")
    path = directory / f"fig{slug}_{panel.metric}_vs_{panel.axis}.csv"
    algorithms = list(panel.series.keys())
    lines = [",".join([panel.axis] + algorithms)]
    for index, x in enumerate(panel.x_values):
        cells = [f"{x:g}"] + [
            f"{panel.series[name][index]:.6g}" for name in algorithms
        ]
        lines.append(",".join(cells))
    path.write_text("\n".join(lines) + "\n")
    return path
