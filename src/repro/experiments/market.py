"""Market-level analysis of a simulation outcome.

The paper's metrics are per-platform aggregates; these helpers look at the
*market* the cooperating platforms form:

* :func:`lending_flows` — who served whose requests (the flow matrix the
  multi-platform example prints);
* :func:`net_lending_balance` — each platform's lender income minus what
  it paid out for borrowed workers (a surplus/deficit view of the
  exchange);
* :func:`worker_income_gini` — inequality of per-worker earnings (the
  incentive mechanism's distributional footprint);
* :class:`MarketReport` — the bundle, with a text rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.matching import AssignmentKind
from repro.core.simulator import SimulationResult
from repro.utils.tables import TextTable

__all__ = [
    "MarketReport",
    "analyze_market",
    "lending_flows",
    "net_lending_balance",
    "worker_income_gini",
]


def lending_flows(result: SimulationResult) -> dict[tuple[str, str], int]:
    """``{(lender, borrower): cooperative completions}``."""
    flows: dict[tuple[str, str], int] = {}
    for record in result.all_records():
        lender = record.worker.platform_id
        borrower = record.request.platform_id
        if lender != borrower:
            flows[(lender, borrower)] = flows.get((lender, borrower), 0) + 1
    return flows


def net_lending_balance(result: SimulationResult) -> dict[str, float]:
    """Per platform: lender income earned minus outer payments made."""
    balance = {platform_id: 0.0 for platform_id in result.platforms}
    for record in result.all_records():
        if record.kind is AssignmentKind.OUTER:
            balance[record.worker.platform_id] += record.payment
            balance[record.request.platform_id] -= record.payment
    return balance


def worker_income_gini(result: SimulationResult) -> float:
    """Gini coefficient of per-worker earnings across the market.

    A worker's earnings: full request value for inner services (the
    paper's platforms pass fares to drivers, keeping commission out of
    scope) plus outer payments for borrowed services.  Reentry clones
    aggregate onto their base worker.  Only workers who earned anything
    are counted (idle workers would dominate otherwise).
    """
    income: dict[str, float] = {}
    for record in result.all_records():
        base_id = record.worker.worker_id.split("@reentry", 1)[0]
        earned = (
            record.payment
            if record.kind is AssignmentKind.OUTER
            else record.request.value
        )
        income[base_id] = income.get(base_id, 0.0) + earned
    values = sorted(income.values())
    n = len(values)
    if n == 0:
        return 0.0
    total = sum(values)
    if total == 0:
        return 0.0
    weighted = sum((index + 1) * value for index, value in enumerate(values))
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n


@dataclass
class MarketReport:
    """The market view of one simulation run."""

    algorithm: str
    flows: dict[tuple[str, str], int] = field(default_factory=dict)
    balance: dict[str, float] = field(default_factory=dict)
    gini: float = 0.0
    cooperative_total: int = 0

    def render(self) -> str:
        """Aligned-text rendering (flow matrix + balances)."""
        platforms = sorted(self.balance)
        table = TextTable(
            ["lender \\ borrower"] + platforms + ["net balance"],
            title=(
                f"Market report — {self.algorithm} "
                f"({self.cooperative_total} cooperative completions, "
                f"worker-income Gini {self.gini:.3f})"
            ),
        )
        for lender in platforms:
            row: list[object] = [lender]
            for borrower in platforms:
                if lender == borrower:
                    row.append("-")
                else:
                    row.append(self.flows.get((lender, borrower), 0))
            row.append(round(self.balance[lender], 1))
            table.add_row(row)
        return table.render()


def analyze_market(result: SimulationResult) -> MarketReport:
    """Compute the full market view of one run."""
    return MarketReport(
        algorithm=result.algorithm_name,
        flows=lending_flows(result),
        balance=net_lending_balance(result),
        gini=worker_income_gini(result),
        cooperative_total=result.total_cooperative,
    )
