"""Run algorithms over scenarios and collect metric rows.

The harness hides the asymmetry between online algorithms (replayed by the
simulator, averaged over seeds) and OFF (a single deterministic solve), so
table and figure code deals only in :class:`AlgorithmMetrics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.baselines.offline import solve_offline, solve_offline_reentry
from repro.core.registry import algorithm_factory
from repro.core.simulator import Scenario, Simulator, SimulatorConfig
from repro.errors import ConfigurationError
from repro.experiments.metrics import AlgorithmMetrics, average_metrics

__all__ = ["ExperimentConfig", "run_algorithm", "run_comparison"]

#: Registry name reserved for the offline optimum.
OFFLINE_NAME = "off"


@dataclass(frozen=True)
class ExperimentConfig:
    """How to run one experiment.

    Attributes
    ----------
    seeds:
        Simulator seeds to average over (the paper's tables average per-day
        results over a month; seeds play the role of days).
    worker_reentry / service_duration:
        The table experiments run with reentry on (a taxi serves many
        requests per day — Table III's |CpR| >> |W| requires it).
    simulator:
        Base simulator config; per-seed runs override only the seed.
    telemetry:
        Attach a fresh :class:`repro.obs.Telemetry` (metrics only) to each
        per-seed run; the averaged row then carries the pooled
        :class:`~repro.obs.TelemetrySummary` into the JSON reports.
    jobs:
        Worker processes for the seed x algorithm cell grid.  ``1`` (the
        default) runs serially in-process; ``> 1`` fans cells across a
        :class:`repro.experiments.parallel.ParallelRunner` pool with
        byte-identical deterministic output (docs/PERFORMANCE.md);
        ``0`` means one worker per CPU.
    """

    seeds: tuple[int, ...] = (0, 1, 2)
    worker_reentry: bool = True
    service_duration: float = 1800.0
    simulator: SimulatorConfig = field(default_factory=SimulatorConfig)
    telemetry: bool = False
    jobs: int = 1

    def simulator_config(self, seed: int) -> SimulatorConfig:
        """The per-seed simulator configuration."""
        config = replace(
            self.simulator,
            seed=seed,
            worker_reentry=self.worker_reentry,
            service_duration=self.service_duration,
        )
        if self.telemetry and config.telemetry is None:
            from repro.obs import Telemetry

            config.telemetry = Telemetry()
        return config


def run_algorithm(
    scenario: Scenario, algorithm: str, config: ExperimentConfig | None = None
) -> AlgorithmMetrics:
    """Run one algorithm (or ``"off"``) on a scenario; returns the averaged
    metric row."""
    config = config or ExperimentConfig()
    if config.jobs != 1:
        from repro.experiments.parallel import ParallelRunner

        return ParallelRunner(jobs=config.jobs).run_algorithm(
            scenario, algorithm, config
        )
    if algorithm.lower() == OFFLINE_NAME:
        if config.worker_reentry:
            solution = solve_offline_reentry(
                scenario, service_duration=config.service_duration
            )
        else:
            solution = solve_offline(scenario)
        return AlgorithmMetrics.from_offline(solution)
    if not config.seeds:
        raise ConfigurationError("ExperimentConfig.seeds must be non-empty")
    factory = algorithm_factory(algorithm)
    rows = []
    for seed in config.seeds:
        simulator = Simulator(config.simulator_config(seed))
        rows.append(AlgorithmMetrics.from_simulation(simulator.run(scenario, factory)))
    return average_metrics(rows)


def run_comparison(
    scenario: Scenario,
    algorithms: list[str],
    config: ExperimentConfig | None = None,
) -> list[AlgorithmMetrics]:
    """Run several algorithms on the same scenario (same seeds, same
    realized worker behaviour — the oracle guarantees identical draws)."""
    if config is not None and config.jobs != 1:
        from repro.experiments.parallel import ParallelRunner

        return ParallelRunner(jobs=config.jobs).run_comparison(
            scenario, algorithms, config
        )
    return [run_algorithm(scenario, name, config) for name in algorithms]
