"""Sensitivity studies over the calibrated model parameters.

DESIGN.md §2 fixes four modelling constants that the paper leaves implicit
(the going-rate behaviour, spatial skew, service occupation).  These
studies quantify how the headline comparison responds when each constant
moves — the evidence that the reproduction's conclusions are not an
artifact of a single lucky calibration point:

* :func:`going_rate_sensitivity` — the worker's cliff location: DemCOM and
  RamCOM payment rates track it ~1:1, the revenue ordering is stable;
* :func:`jitter_sensitivity` — cliff sharpness: drives DemCOM's acceptance
  ratio (the §III-D effect) while RamCOM stays high;
* :func:`skew_sensitivity` — Fig. 2's imbalance: the single knob behind
  the size of COM's advantage over TOTA;
* :func:`occupation_sensitivity` — service duration: worker scarcity and
  with it every completion rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.experiments.harness import ExperimentConfig, run_comparison
from repro.experiments.metrics import AlgorithmMetrics
from repro.utils.tables import TextTable
from repro.workloads.builders import BehaviorConfig
from repro.workloads.synthetic import SyntheticWorkload, SyntheticWorkloadConfig

__all__ = [
    "SensitivityResult",
    "going_rate_sensitivity",
    "jitter_sensitivity",
    "skew_sensitivity",
    "occupation_sensitivity",
]

ALGORITHMS = ["tota", "demcom", "ramcom"]


@dataclass
class SensitivityResult:
    """Rows of one sensitivity sweep."""

    parameter: str
    #: (parameter value, {algorithm: metrics row}).
    rows: list[tuple[float, dict[str, AlgorithmMetrics]]] = field(
        default_factory=list
    )

    def render(self) -> str:
        """Aligned-text summary of the sweep."""
        table = TextTable(
            [
                self.parameter,
                "rev(TOTA)",
                "rev(DemCOM)",
                "rev(RamCOM)",
                "acpt(Dem)",
                "acpt(Ram)",
                "v'/v(Dem)",
                "v'/v(Ram)",
            ],
            title=f"Sensitivity — {self.parameter}",
        )
        for value, by_algorithm in self.rows:
            table.add_row(
                [
                    f"{value:g}",
                    round(by_algorithm["tota"].total_revenue),
                    round(by_algorithm["demcom"].total_revenue),
                    round(by_algorithm["ramcom"].total_revenue),
                    by_algorithm["demcom"].acceptance_ratio,
                    by_algorithm["ramcom"].acceptance_ratio,
                    by_algorithm["demcom"].payment_rate,
                    by_algorithm["ramcom"].payment_rate,
                ]
            )
        return table.render()

    def series(self, algorithm: str, metric: str) -> list[float]:
        """One algorithm's metric across the sweep."""
        out = []
        for __, by_algorithm in self.rows:
            row = by_algorithm[algorithm]
            value = getattr(row, metric)
            out.append(value() if callable(value) else value)
        return out


def _base_workload(**overrides) -> SyntheticWorkloadConfig:
    defaults = dict(request_count=600, worker_count=160, city_km=8.0)
    defaults.update(overrides)
    return SyntheticWorkloadConfig(**defaults)


def _run_point(
    workload: SyntheticWorkloadConfig,
    config: ExperimentConfig,
    scenario_seed: int,
) -> dict[str, AlgorithmMetrics]:
    scenario = SyntheticWorkload(workload).build(seed=scenario_seed)
    rows = run_comparison(scenario, ALGORITHMS, config)
    return {name: row for name, row in zip(ALGORITHMS, rows)}


def going_rate_sensitivity(
    values: tuple[float, ...] = (0.6, 0.7, 0.8, 0.9),
    config: ExperimentConfig | None = None,
    scenario_seed: int = 21,
) -> SensitivityResult:
    """Sweep the mean going rate (workers' price cliff location)."""
    config = config or ExperimentConfig()
    result = SensitivityResult(parameter="going_rate_mean")
    for value in values:
        workload = _base_workload(
            behavior=BehaviorConfig(going_rate_mean=value)
        )
        result.rows.append((value, _run_point(workload, config, scenario_seed)))
    return result


def jitter_sensitivity(
    values: tuple[float, ...] = (0.01, 0.03, 0.08, 0.15),
    config: ExperimentConfig | None = None,
    scenario_seed: int = 21,
) -> SensitivityResult:
    """Sweep the within-worker cliff sharpness."""
    config = config or ExperimentConfig()
    result = SensitivityResult(parameter="jitter")
    for value in values:
        workload = _base_workload(behavior=BehaviorConfig(jitter=value))
        result.rows.append((value, _run_point(workload, config, scenario_seed)))
    return result


def skew_sensitivity(
    values: tuple[float, ...] = (0.0, 0.3, 0.6, 0.9),
    config: ExperimentConfig | None = None,
    scenario_seed: int = 21,
) -> SensitivityResult:
    """Sweep Fig. 2's spatial imbalance."""
    config = config or ExperimentConfig()
    result = SensitivityResult(parameter="skew")
    for value in values:
        workload = _base_workload(skew=value)
        result.rows.append((value, _run_point(workload, config, scenario_seed)))
    return result


def occupation_sensitivity(
    values: tuple[float, ...] = (900.0, 1800.0, 3600.0),
    config: ExperimentConfig | None = None,
    scenario_seed: int = 21,
) -> SensitivityResult:
    """Sweep the per-service worker occupation (scarcity dial)."""
    config = config or ExperimentConfig()
    result = SensitivityResult(parameter="service_duration")
    workload = _base_workload()
    for value in values:
        tuned = replace(config, service_duration=value)
        result.rows.append((value, _run_point(workload, tuned, scenario_seed)))
    return result
