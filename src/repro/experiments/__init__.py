"""Experiment harness: everything needed to regenerate the paper's §V.

* :mod:`metrics` — the metric rows the paper's tables report, computed
  from simulation results and offline solutions;
* :mod:`harness` — run one algorithm (or OFF) over one scenario, averaged
  over seeds;
* :mod:`parallel` — fan the seed x algorithm cell grid across a process
  pool with byte-identical deterministic output (docs/PERFORMANCE.md);
* :mod:`tables` — Tables V-VII (the three city pairs);
* :mod:`figures` — Fig. 5's twelve panels (revenue / response time /
  memory / acceptance ratio, each vs |R| / |W| / rad);
* :mod:`competitive` — empirical competitive-ratio studies backing
  Theorems 1 and 2;
* :mod:`ablation` — design-choice ablations (DESIGN.md §4).
"""

from repro.experiments.metrics import AlgorithmMetrics, average_metrics
from repro.experiments.harness import ExperimentConfig, run_algorithm, run_comparison
from repro.experiments.parallel import ParallelRunner
from repro.experiments.tables import TableResult, run_city_table
from repro.experiments.figures import FigurePanel, run_figure5_panel
from repro.experiments.competitive import (
    CompetitiveRatioReport,
    adversarial_ratio,
    random_order_ratio,
)
from repro.experiments.chaos import ChaosResult, ChaosRow, run_fault_sweep

__all__ = [
    "ChaosResult",
    "ChaosRow",
    "run_fault_sweep",
    "AlgorithmMetrics",
    "average_metrics",
    "ExperimentConfig",
    "ParallelRunner",
    "run_algorithm",
    "run_comparison",
    "TableResult",
    "run_city_table",
    "FigurePanel",
    "run_figure5_panel",
    "CompetitiveRatioReport",
    "adversarial_ratio",
    "random_order_ratio",
]
