"""The hot-path benchmark harness behind ``benchmarks/bench_hotpath.py``.

Measures the quantities the performance work optimises (docs/PERFORMANCE.md):

* **payment micro** — Algorithm-2 estimates on a standalone
  :class:`~repro.core.payment.MinimumOuterPaymentEstimator` with realistic
  candidate histories: decisions/sec, p50/p95 per-estimate latency, and the
  Monte-Carlo work per estimate (instances and bisection iterations, read
  back from the :mod:`repro.obs` counters);
* **DemCOM end-to-end** — a full simulator run, decisions/sec;
* **parallel** *(optional)* — wall-clock speedup of
  :class:`~repro.experiments.parallel.ParallelRunner` over the serial
  harness on a seed grid.

Each section is measured twice: ``baseline`` runs the retained reference
implementations (``fast_path=False``) — the pre-optimisation code, bit for
bit — and ``current`` runs the default fast path, so the recorded speedup
compares this working tree against its own baseline on the same machine.
That ratio is what CI regresses on (:func:`check_regression`): ratios of
two timings from one run transfer across machines; absolute timings do not.

The repo-root ``BENCH_hotpath.json`` is the checked-in reference produced
by ``python benchmarks/bench_hotpath.py --output BENCH_hotpath.json``.
"""

from __future__ import annotations

import json
from collections.abc import Hashable
from pathlib import Path

from repro.core.acceptance import AcceptanceEstimator
from repro.core.payment import MinimumOuterPaymentEstimator
from repro.core.registry import algorithm_factory
from repro.core.simulator import Simulator, SimulatorConfig
from repro.experiments.harness import ExperimentConfig, run_comparison
from repro.obs import Telemetry
from repro.utils.rng import derive_rng
from repro.utils.timer import Stopwatch, TimingAccumulator
from repro.workloads.synthetic import SyntheticWorkload, SyntheticWorkloadConfig

__all__ = [
    "run_hotpath_benchmark",
    "check_regression",
    "render_report",
    "SPEEDUP_TOLERANCE",
    "KERNEL_SPEEDUP_FLOOR",
]

#: A run's speedup may fall this fraction below the checked-in reference
#: speedup before CI fails (ratios are machine-independent but still jitter
#: on loaded runners).
SPEEDUP_TOLERANCE = 0.25

#: Absolute floor for the ``payment_kernel`` section: the vectorized
#: batch kernel must beat the scalar fast path by at least this ratio
#: whenever numpy is importable (docs/PERFORMANCE.md#the-array-backend).
KERNEL_SPEEDUP_FLOOR = 10.0

#: (workers with history, history length, candidates per estimate) and the
#: number of estimates, per mode.
_MICRO_SHAPE = {"quick": (48, 60, 24, 120), "full": (64, 120, 32, 600)}
_END_TO_END = {"quick": (240, 64), "full": (900, 240)}  # (requests, workers)
#: (batches, batch size) for the vectorized-kernel section — batch size
#: mirrors the gateway's micro-batch backlog under sustained load.  Both
#: modes use the same batch size so the quick-mode speedup ratio
#: transfers to the full-mode reference the CI check compares against.
_KERNEL_SHAPE = {"quick": (10, 32), "full": (25, 32)}


def _micro_estimator(
    n_workers: int, history_length: int, fast_path: bool
) -> tuple[MinimumOuterPaymentEstimator, list[Hashable]]:
    """An Algorithm-2 estimator over synthetic Eq.-4 histories."""
    acceptance = AcceptanceEstimator()
    history_rng = derive_rng(0xBE7C, "bench/histories")
    for index in range(n_workers):
        history = [history_rng.random() for _ in range(history_length)]
        acceptance.set_history(f"w{index}", history)
    # A fifth of the candidate pool is history-less (cold-start path).
    workers: list[Hashable] = [f"w{i}" for i in range(n_workers)]
    workers.extend(f"cold{i}" for i in range(n_workers // 5))
    return MinimumOuterPaymentEstimator(acceptance, fast_path=fast_path), workers


def _measure_micro(fast_path: bool, mode: str) -> dict:
    """Time Algorithm-2 estimates; read MC work back from the probes."""
    n_workers, history_length, candidates, estimates = _MICRO_SHAPE[mode]
    estimator, workers = _micro_estimator(n_workers, history_length, fast_path)
    rng = derive_rng(0xBE7C, "bench/estimate")
    pick = derive_rng(0xBE7C, "bench/candidates")
    telemetry = Telemetry()
    probe = telemetry.probe
    latencies = TimingAccumulator()
    watch = Stopwatch()
    for _ in range(estimates):
        value = 10.0 + 90.0 * pick.random()
        ids = pick.sample(workers, candidates)
        with watch:
            estimator.estimate(value, ids, rng, probe=probe)
        latencies.record(watch.elapsed_seconds)
    summary = telemetry.summary()
    return {
        "estimates": estimates,
        "candidates_per_estimate": candidates,
        "decisions_per_sec": round(estimates / latencies.total_seconds, 2),
        "p50_ms": round(latencies.percentile_ms(0.5), 4),
        "p95_ms": round(latencies.percentile_ms(0.95), 4),
        "mc_instances_per_estimate": summary.counter_value("payment_mc_instances")
        / estimates,
        "bisection_iterations_per_estimate": round(
            summary.counter_value("payment_mc_iterations") / estimates, 2
        ),
    }


def _measure_kernel(mode: str) -> dict | None:
    """Scalar fast path vs the vectorized batch kernel, same workload.

    Returns ``None`` when numpy is unavailable (the section is simply
    omitted; :func:`check_regression` skips it in that case).  All
    sides price the same ``(value, candidates, key)`` batches drawn from
    one seeded stream.  ``baseline`` is the retained reference
    implementation (``fast_path=False``) — the same yardstick the
    ``payment_micro`` section regresses against — and the scalar fast
    path is recorded alongside so the payload shows how much of the win
    is the kernel itself.  Candidate sets recur across requests (a
    platform's outer pool drifts slowly between completions), modelled
    here as a small set pool with per-batch churn; recurrence is what
    the estimator's matrix/grid caches amortise.
    """
    from repro.core import payment_kernel

    if payment_kernel.resolve_backend("auto") != "numpy":
        return None
    n_workers, history_length, candidates, _ = _MICRO_SHAPE[mode]
    batches, batch_size = _KERNEL_SHAPE[mode]
    reference, workers = _micro_estimator(n_workers, history_length, False)
    fast = MinimumOuterPaymentEstimator(reference.estimator, fast_path=True)
    vector = MinimumOuterPaymentEstimator(
        reference.estimator, backend="numpy", kernel_seed=0xBE7C
    )
    pick = derive_rng(0xBE7C, "bench/kernel-candidates")
    pool = [pick.sample(workers, candidates) for _ in range(6)]
    items = []
    for batch in range(batches):
        pool[batch % len(pool)] = pick.sample(workers, candidates)
        items.append(
            [
                (
                    10.0 + 90.0 * pick.random(),
                    pool[pick.randrange(len(pool))],
                    f"r{batch}-{slot}",
                )
                for slot in range(batch_size)
            ]
        )
    rng = derive_rng(0xBE7C, "bench/kernel-estimate")

    def _time(estimator: MinimumOuterPaymentEstimator) -> TimingAccumulator:
        latencies = TimingAccumulator()
        watch = Stopwatch()
        # Warm-up batch populates the matrix/grid caches both backends
        # share, so neither side pays one-off construction costs.
        estimator.estimate_many(items[0], rng)
        for batch in items:
            with watch:
                estimator.estimate_many(batch, rng)
            latencies.record(watch.elapsed_seconds)
        return latencies

    reference_times = _time(reference)
    fast_times = _time(fast)
    vector_times = _time(vector)
    total = batches * batch_size

    def _side(latencies: TimingAccumulator) -> dict:
        return {
            "estimates": total,
            "estimates_per_sec": round(total / latencies.total_seconds, 2),
            "us_per_estimate": round(
                latencies.total_seconds / total * 1e6, 3
            ),
            "p95_batch_ms": round(latencies.percentile_ms(0.95), 4),
        }

    return {
        "batch_size": batch_size,
        "candidates_per_estimate": candidates,
        "baseline": _side(reference_times),
        "scalar_fast_path": _side(fast_times),
        "current": _side(vector_times),
        "speedup": round(
            reference_times.total_seconds / vector_times.total_seconds, 3
        ),
        "speedup_vs_fast_path": round(
            fast_times.total_seconds / vector_times.total_seconds, 3
        ),
    }


def _measure_end_to_end(fast_path: bool, mode: str) -> dict:
    """One full DemCOM simulation; decisions/sec over the whole run."""
    requests, workers = _END_TO_END[mode]
    scenario = SyntheticWorkload(
        SyntheticWorkloadConfig(
            request_count=requests, worker_count=workers, city_km=6.0
        )
    ).build(seed=17)
    config = SimulatorConfig(
        seed=3,
        worker_reentry=True,
        service_duration=1800.0,
        payment_fast_path=fast_path,
        measure_response_time=False,
    )
    watch = Stopwatch()
    with watch:
        result = Simulator(config).run(scenario, algorithm_factory("demcom"))
    # One serve/borrow/reject decision per request (reentry reuses workers
    # but never replays a request).
    decisions = result.total_completed + result.total_rejected
    return {
        "requests": requests,
        "decisions": decisions,
        "elapsed_seconds": round(watch.elapsed_seconds, 4),
        "decisions_per_sec": round(decisions / watch.elapsed_seconds, 2),
    }


def _measure_parallel(jobs: int, mode: str) -> dict:
    """Wall-clock speedup of the parallel executor on a seed grid."""
    from repro.experiments.parallel import ParallelRunner

    # Sized so each cell outweighs pool start-up; tiny grids are faster
    # run serially (docs/PERFORMANCE.md discusses the crossover).
    scenario = SyntheticWorkload(
        SyntheticWorkloadConfig(request_count=600, worker_count=160, city_km=6.0)
    ).build(seed=17)
    seeds = tuple(range(6 if mode == "quick" else 10))
    config = ExperimentConfig(
        seeds=seeds, simulator=SimulatorConfig(measure_response_time=False)
    )
    algorithms = ["demcom", "ramcom"]
    serial_watch = Stopwatch()
    with serial_watch:
        run_comparison(scenario, algorithms, config)
    parallel_watch = Stopwatch()
    with parallel_watch:
        ParallelRunner(jobs=jobs).run_comparison(scenario, algorithms, config)
    return {
        "jobs": jobs,
        "cells": len(seeds) * len(algorithms),
        "serial_seconds": round(serial_watch.elapsed_seconds, 4),
        "parallel_seconds": round(parallel_watch.elapsed_seconds, 4),
        "speedup": round(
            serial_watch.elapsed_seconds / parallel_watch.elapsed_seconds, 3
        ),
    }


def run_hotpath_benchmark(quick: bool = True, jobs: int = 0) -> dict:
    """Run every section; returns the ``BENCH_hotpath.json`` payload.

    ``quick`` shrinks the workloads for CI (documented in
    docs/PERFORMANCE.md); ``jobs=0`` sizes the parallel section to the
    machine.  The parallel section is skipped when only one worker is
    available (``jobs=1``, or ``jobs=0`` on a single-core machine) —
    a one-process pool has nothing to compare against the serial path.
    """
    from repro.experiments.parallel import resolve_jobs

    jobs = resolve_jobs(jobs)
    mode = "quick" if quick else "full"
    payload: dict = {"benchmark": "hotpath", "schema": 2, "mode": mode}
    micro_baseline = _measure_micro(fast_path=False, mode=mode)
    micro_current = _measure_micro(fast_path=True, mode=mode)
    payload["payment_micro"] = {
        "baseline": micro_baseline,
        "current": micro_current,
        "speedup": round(
            micro_current["decisions_per_sec"]
            / micro_baseline["decisions_per_sec"],
            3,
        ),
    }
    kernel = _measure_kernel(mode)
    if kernel is not None:
        payload["payment_kernel"] = kernel
    end_baseline = _measure_end_to_end(fast_path=False, mode=mode)
    end_current = _measure_end_to_end(fast_path=True, mode=mode)
    payload["demcom_end_to_end"] = {
        "baseline": end_baseline,
        "current": end_current,
        "speedup": round(
            end_current["decisions_per_sec"] / end_baseline["decisions_per_sec"],
            3,
        ),
    }
    if jobs > 1:
        payload["parallel"] = _measure_parallel(jobs, mode)
    return payload


def check_regression(
    result: dict,
    reference_path: str | Path,
    tolerance: float = SPEEDUP_TOLERANCE,
) -> list[str]:
    """Compare a fresh run against the checked-in reference.

    Returns a list of human-readable failures (empty == pass).  Only
    *speedup ratios* are compared — both sides of each ratio were measured
    in the same run on the same machine, so the comparison is
    machine-independent; absolute decisions/sec are reported but never
    gated on.
    """
    reference = json.loads(Path(reference_path).read_text())
    failures: list[str] = []
    for section in ("payment_micro", "demcom_end_to_end", "payment_kernel"):
        if section not in reference:
            continue
        if section not in result:
            # The kernel section is legitimately absent on a no-numpy
            # install — that CI leg exercises the pure-Python fallback.
            if section == "payment_kernel":
                continue
            failures.append(f"{section}: missing from the measured payload")
            continue
        floor = reference[section]["speedup"] * (1.0 - tolerance)
        measured = result[section]["speedup"]
        if measured < floor:
            failures.append(
                f"{section}: speedup {measured:.3f}x fell below "
                f"{floor:.3f}x (reference {reference[section]['speedup']:.3f}x "
                f"- {tolerance:.0%} tolerance)"
            )
    kernel = result.get("payment_kernel")
    if kernel is not None and kernel["speedup"] < KERNEL_SPEEDUP_FLOOR:
        failures.append(
            f"payment_kernel: speedup {kernel['speedup']:.3f}x fell below "
            f"the absolute {KERNEL_SPEEDUP_FLOOR:.0f}x floor"
        )
    return failures


def render_report(payload: dict) -> str:
    """A terminal-friendly summary of one benchmark payload."""
    lines = [f"hotpath benchmark ({payload['mode']} mode)"]
    micro = payload["payment_micro"]
    lines.append(
        "  payment micro:    "
        f"{micro['baseline']['decisions_per_sec']:>10.1f} -> "
        f"{micro['current']['decisions_per_sec']:>10.1f} decisions/sec "
        f"({micro['speedup']:.2f}x)  "
        f"p95 {micro['baseline']['p95_ms']:.3f} -> "
        f"{micro['current']['p95_ms']:.3f} ms"
    )
    kernel = payload.get("payment_kernel")
    if kernel:
        lines.append(
            "  payment kernel:   "
            f"{kernel['baseline']['us_per_estimate']:>10.1f} -> "
            f"{kernel['current']['us_per_estimate']:>10.1f} us/estimate "
            f"({kernel['speedup']:.2f}x, batch {kernel['batch_size']})"
        )
    end = payload["demcom_end_to_end"]
    lines.append(
        "  demcom end-to-end:"
        f"{end['baseline']['decisions_per_sec']:>10.1f} -> "
        f"{end['current']['decisions_per_sec']:>10.1f} decisions/sec "
        f"({end['speedup']:.2f}x)"
    )
    parallel = payload.get("parallel")
    if parallel:
        lines.append(
            f"  parallel executor: {parallel['serial_seconds']:.2f}s serial -> "
            f"{parallel['parallel_seconds']:.2f}s with {parallel['jobs']} jobs "
            f"({parallel['speedup']:.2f}x, {parallel['cells']} cells)"
        )
    return "\n".join(lines)
