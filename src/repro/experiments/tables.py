"""Tables V-VII: the city-pair effectiveness/efficiency comparisons.

Each table compares OFF / TOTA / DemCOM / RamCOM on one simulated
two-company city trace (Table III pair) over the same metrics the paper
reports: per-platform revenue, response time, memory, completed requests,
cooperative requests, acceptance ratio, and outer payment rate.

The default ``scale`` runs reduced-size instances (documented in
EXPERIMENTS.md); the paper's absolute revenue numbers scale with |R|, so
comparisons are about orderings and relative gaps, not absolute CNY.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.harness import ExperimentConfig, run_comparison
from repro.experiments.metrics import AlgorithmMetrics
from repro.utils.tables import TextTable, format_float
from repro.workloads.datasets import CITY_PAIRS, build_city_pair

__all__ = ["TableResult", "run_city_table", "TABLE_IDS"]

#: Paper table number -> city pair name.
TABLE_IDS = {
    "V": "chengdu-oct",
    "VI": "chengdu-nov",
    "VII": "xian-nov",
}

#: Default algorithm order, matching the paper's table rows.
DEFAULT_ALGORITHMS = ["off", "tota", "demcom", "ramcom"]


@dataclass
class TableResult:
    """One regenerated table."""

    table_id: str
    pair: str
    scale: float
    rows: list[AlgorithmMetrics] = field(default_factory=list)
    platform_ids: list[str] = field(default_factory=list)

    def row(self, algorithm: str) -> AlgorithmMetrics:
        """Look up a row by algorithm name (case-insensitive)."""
        for candidate in self.rows:
            if candidate.algorithm.lower() == algorithm.lower():
                return candidate
        raise KeyError(algorithm)

    def render(self) -> str:
        """Render the paper's table layout as aligned text."""
        first, second = self.platform_ids
        table = TextTable(
            [
                "Methods",
                f"Rev({first})",
                f"Rev({second})",
                "Time(ms)",
                "Mem(MB)",
                f"|CpR({first})|",
                f"|CpR({second})|",
                "|CoR|",
                "|AcpRt|",
                "v'/v",
            ],
            title=(
                f"Table {self.table_id} — {self.pair} @ scale {self.scale:g} "
                f"(averaged over {max(r.runs for r in self.rows)} seed-days)"
            ),
        )
        for row in self.rows:
            table.add_row(
                [
                    row.algorithm,
                    format_float(row.revenue.get(first, 0.0), 0),
                    format_float(row.revenue.get(second, 0.0), 0),
                    format_float(row.response_time_ms, 3),
                    format_float(row.memory_mb, 2),
                    row.completed.get(first, 0),
                    row.completed.get(second, 0),
                    row.cooperative if row.payment_rate is not None else None,
                    row.acceptance_ratio,
                    row.payment_rate,
                ]
            )
        return table.render()


def run_city_table(
    table_id: str,
    scale: float = 0.02,
    scenario_seed: int = 7,
    config: ExperimentConfig | None = None,
    algorithms: list[str] | None = None,
) -> TableResult:
    """Regenerate Table V, VI or VII.

    Parameters
    ----------
    table_id:
        ``"V"``, ``"VI"`` or ``"VII"`` (or a pair name directly).
    scale:
        Fraction of the Table-III entity counts to simulate.
    scenario_seed:
        Seed of the generated city trace (one "day").
    config:
        Harness configuration (seeds averaged, reentry, service duration).
    """
    pair = TABLE_IDS.get(table_id.upper(), table_id)
    if pair not in CITY_PAIRS:
        raise KeyError(f"unknown table {table_id!r}")
    scenario = build_city_pair(pair, scale=scale, seed=scenario_seed)
    rows = run_comparison(
        scenario, algorithms or list(DEFAULT_ALGORITHMS), config
    )
    # The online rows carry a memory estimate; OFF shares the same entity
    # storage, so mirror the TOTA figure for it (the paper's tables show
    # near-identical memory for all methods).
    offline_rows = [row for row in rows if row.algorithm.upper() == "OFF"]
    online_rows = [row for row in rows if row.algorithm.upper() != "OFF"]
    if offline_rows and online_rows:
        offline_rows[0].memory_mb = online_rows[0].memory_mb
    return TableResult(
        table_id=table_id.upper(),
        pair=pair,
        scale=scale,
        rows=rows,
        platform_ids=list(scenario.platform_ids),
    )
