"""Ablations of the design choices DESIGN.md calls out.

Each ablation runs the same scenario with one knob flipped and reports the
headline metrics side by side:

* ``cooperation`` — exchange on vs off (off degrades DemCOM/RamCOM to
  TOTA-like behaviour; quantifies the whole paper's premise);
* ``ramcom_k`` — RamCOM's threshold exponent pinned to each value of
  ``{1..theta}`` vs the randomized draw (the CR analysis needs the draw;
  the sweep shows the per-k revenue profile);
* ``payment_accuracy`` — Algorithm 2's (xi, eta) accuracy knobs: sample
  count vs estimate quality vs response time;
* ``pricer_breakpoints`` — MER maximization over grid-only vs
  grid+history-breakpoints (exactness of the Def.-4.1 optimum);
* ``inner_pick`` — DemCOM's nearest-worker tie-break vs random choice
  (travel-distance extension metric).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.ramcom import RamCOM
from repro.core.simulator import Scenario, Simulator
from repro.experiments.harness import ExperimentConfig, run_algorithm
from repro.experiments.metrics import AlgorithmMetrics, average_metrics
from repro.utils.tables import TextTable

__all__ = ["AblationResult", "run_cooperation_ablation", "run_ramcom_k_sweep",
           "run_payment_accuracy_ablation", "run_pricer_breakpoint_ablation"]


@dataclass
class AblationResult:
    """Rows of one ablation, each labelled with the knob's setting."""

    name: str
    rows: list[tuple[str, AlgorithmMetrics]] = field(default_factory=list)

    def render(self) -> str:
        """Aligned-text comparison of the ablation's settings."""
        table = TextTable(
            ["Setting", "Revenue", "Completed", "|CoR|", "AcpRt", "Time(ms)"],
            title=f"Ablation — {self.name}",
        )
        for label, row in self.rows:
            table.add_row(
                [
                    label,
                    round(row.total_revenue),
                    round(row.total_completed),
                    row.cooperative,
                    row.acceptance_ratio,
                    row.response_time_ms,
                ]
            )
        return table.render()


def run_cooperation_ablation(
    scenario: Scenario, config: ExperimentConfig | None = None
) -> AblationResult:
    """DemCOM / RamCOM with the exchange enabled vs disabled."""
    config = config or ExperimentConfig()
    result = AblationResult(name="cooperation on/off")
    off_config = replace(
        config, simulator=replace(config.simulator, cooperation_enabled=False)
    )
    for algorithm in ("demcom", "ramcom"):
        result.rows.append(
            (f"{algorithm}+coop", run_algorithm(scenario, algorithm, config))
        )
        result.rows.append(
            (f"{algorithm}-coop", run_algorithm(scenario, algorithm, off_config))
        )
    return result


def run_ramcom_k_sweep(
    scenario: Scenario, config: ExperimentConfig | None = None
) -> AblationResult:
    """RamCOM's revenue as a function of the pinned threshold exponent."""
    config = config or ExperimentConfig()
    result = AblationResult(name="RamCOM threshold exponent k")
    theta = RamCOM.theta_for(scenario.value_upper_bound)
    for k in range(1, theta + 1):
        rows = []
        for seed in config.seeds:
            simulator = Simulator(config.simulator_config(seed))
            rows.append(
                AlgorithmMetrics.from_simulation(
                    simulator.run(scenario, lambda: RamCOM(fixed_k=k))
                )
            )
        result.rows.append((f"k={k} (thr=e^{k})", average_metrics(rows)))
    result.rows.append(("k~U{1..theta}", run_algorithm(scenario, "ramcom", config)))
    return result


def run_payment_accuracy_ablation(
    scenario: Scenario, config: ExperimentConfig | None = None
) -> AblationResult:
    """DemCOM under different Algorithm-2 accuracy settings."""
    config = config or ExperimentConfig()
    result = AblationResult(name="Algorithm 2 accuracy (xi, eta)")
    for xi, eta in ((0.2, 0.7), (0.1, 0.5), (0.05, 0.3)):
        tuned = replace(
            config,
            simulator=replace(config.simulator, payment_xi=xi, payment_eta=eta),
        )
        row = run_algorithm(scenario, "demcom", tuned)
        result.rows.append((f"xi={xi}, eta={eta}", row))
    return result


def run_pricer_breakpoint_ablation(
    scenario: Scenario, config: ExperimentConfig | None = None
) -> AblationResult:
    """RamCOM's MER maximization: even grid only vs grid + CDF breakpoints."""
    config = config or ExperimentConfig()
    result = AblationResult(name="MER pricer candidate payments")
    settings = (
        (10, True, "grid-10+bp"),
        (50, True, "grid-50+bp"),
        (200, True, "grid-200+bp"),
        (50, False, "grid-50-bp"),
    )
    for steps, breakpoints, label in settings:
        tuned = replace(
            config,
            simulator=replace(
                config.simulator,
                pricer_grid_steps=steps,
                pricer_history_breakpoints=breakpoints,
            ),
        )
        result.rows.append((label, run_algorithm(scenario, "ramcom", tuned)))
    return result
