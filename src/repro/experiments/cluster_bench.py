"""Cluster benchmark: sharded throughput at 1/2/4/8 shards.

Measures the cluster the way an operator would size it: one dense
synthetic trace routed through :func:`~repro.cluster.server.local_cluster`
at each shard count, with the sanitizer on so every measured run also
proves the cluster-wide Def. 2.5/2.6 invariants held.

Two numbers per shard count:

``inline``
    wall-clock throughput of the whole cluster driven in one process on
    one event loop — router + shards share a single core, so this row
    shows the *coordination overhead* of sharding (forward fan-out,
    routing), not parallel speedup.  It may go down as shards go up;
    that is expected and never gated.

``parallel model``
    each shard's recorded arrival substream (exactly what the router
    sent it, forwarded re-drives included) is re-driven through a fresh
    solitary gateway and timed in isolation.  In a real deployment every
    shard is its own process, so cluster wall time is the *slowest
    shard's* time — the critical path.  ``modeled_speedup`` is the
    1-shard time over that critical path: the honest parallel speedup a
    balanced plan buys, measurable on any host because each shard is
    timed alone.  Load imbalance and forwarding duplicates are exactly
    what pull it below ideal ``N``x.

``com-repro bench --cluster --check BENCH_cluster.json`` gates the
modeled 4-shard speedup against :data:`SCALING_FLOOR` (2.5x) plus a
drift guard against the checked-in reference, and a conservation floor:
the cluster must complete at least :data:`CONSERVATION_FLOOR` of the
single-shard match count (cross-shard forwarding is what keeps border
requests from being lost to the partition).
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

from repro.cluster.plan import ShardPlan, reach_from_events
from repro.cluster.server import drive_cluster, local_cluster
from repro.core import SimulatorConfig
from repro.core.simulator import Scenario
from repro.obs.events import EventLog, GatewayEvent
from repro.service.clock import VirtualClock
from repro.service.gateway import MatchingGateway
from repro.service.wire import request_from_wire, worker_from_wire
from repro.utils.timer import Stopwatch
from repro.workloads.synthetic import SyntheticWorkload, SyntheticWorkloadConfig

__all__ = [
    "SCALING_FLOOR",
    "CONSERVATION_FLOOR",
    "run_cluster_benchmark",
    "render_cluster_report",
    "check_cluster_regression",
]

#: Modeled 4-shard speedup (1-shard time / 4-shard critical path) must
#: reach at least this — a balanced plan on 4 shards cuts the slowest
#: shard's work well past half.
SCALING_FLOOR = 2.5

#: The cluster must complete at least this fraction of the 1-shard match
#: count at every shard count (forwarding recovers border matches).
CONSERVATION_FLOOR = 0.8

#: Shard counts measured, in order; quick mode drops the last.
_SHARD_COUNTS = (1, 2, 4, 8)

#: Isolated per-shard drives repeated this many times; the kept time is
#: the fastest (shared-machine noise only ever slows a run).
_DRIVE_REPS = 3

#: Plan grid cell edge the bench partitions with — fine cells so the
#: density plan can track the synthetic city's hotspots and cooperation
#: (1 km worker radius) stays local to shard borders.
_CELL_KM = 1.0


def _build(requests: int, workers: int) -> tuple[Scenario, SimulatorConfig]:
    """A balanced-supply city trace with *local* cooperation reach.

    Workers match requests 1:1 so most decisions serve at home, and the
    1 km service radius keeps reject forwarding confined to actual shard
    borders — the regime sharding is for.  The synthetic city is
    spatially skewed (hotspots), which is why the bench partitions with
    the density-aware plan rather than uniform stripes.
    """
    scenario = SyntheticWorkload(
        SyntheticWorkloadConfig(
            request_count=requests,
            worker_count=workers,
            radius_km=1.0,
            city_km=8.0,
            horizon_seconds=7200.0,
        )
    ).build(seed=11)
    config = SimulatorConfig(measure_response_time=False)
    return scenario, config


#: Concurrent in-flight submissions while driving a shard in isolation —
#: the same pipelined client population the service bench models, so the
#: serialized decision loop is never left idle between arrivals.
_PIPELINE_WINDOW = 64


async def _drive_substream(
    substream: list[GatewayEvent],
    scenario: Scenario,
    config: SimulatorConfig,
    algorithm: str,
) -> tuple[float, int]:
    """Time one shard's substream through a fresh solitary gateway.

    Tasks are created in substream order and the gateway queue is
    unbounded, so jobs reach the decision loop in exactly the order the
    router sent them — the pipeline changes scheduling, never matching
    semantics.
    """
    clock = VirtualClock()
    gateway = MatchingGateway(
        scenario, algorithm, config, clock=clock, events=EventLog(ring=0)
    )
    decided = 0
    window: list[asyncio.Task] = []
    await gateway.start()
    watch = Stopwatch().start()
    try:
        for event in substream:
            if event.kind == "worker":
                worker = worker_from_wire(event.fields["worker"])
                clock.advance_to(worker.arrival_time)
                window.append(
                    asyncio.create_task(gateway.submit_worker(worker))
                )
            elif event.kind == "decision":
                request = request_from_wire(event.fields["request"])
                clock.advance_to(request.arrival_time)
                window.append(
                    asyncio.create_task(gateway.submit_request(request))
                )
                decided += 1
            elif event.kind == "shed":
                request = request_from_wire(event.fields["request"])
                clock.advance_to(request.arrival_time)
                window.append(
                    asyncio.create_task(gateway.replay_shed(request))
                )
            if len(window) >= _PIPELINE_WINDOW:
                await asyncio.gather(*window)
                window.clear()
        if window:
            await asyncio.gather(*window)
            window.clear()
        await gateway.drain()
    finally:
        elapsed = watch.stop()
        if gateway.running:
            await gateway.stop()
    return elapsed, decided


async def _bench_shard_count(
    scenario: Scenario,
    config: SimulatorConfig,
    shard_count: int,
    algorithm: str,
) -> dict:
    """One shard count: inline cluster run + isolated per-shard times."""
    reach = reach_from_events(scenario.events)
    plan = ShardPlan.from_density(
        scenario.events, shard_count, _CELL_KM, reach_km=reach
    )
    router, logs, _clock = local_cluster(
        scenario, plan, algorithm=algorithm, config=config, sanitize=True
    )
    await router.start()
    try:
        watch = Stopwatch().start()
        result = await drive_cluster(router, scenario.events)
        inline_elapsed = watch.stop()
    finally:
        await router.stop()
    substreams = [
        [event for event in log.events() if event.kind != "meta"]
        for log in logs
    ]
    shard_times: list[float] = []
    decided_per_shard: list[int] = []
    for substream in substreams:
        best = float("inf")
        decided = 0
        for __ in range(_DRIVE_REPS):
            elapsed, decided = await _drive_substream(
                substream, scenario, config, algorithm
            )
            best = min(best, elapsed)
        shard_times.append(best)
        decided_per_shard.append(decided)
    critical_path = max(shard_times) if shard_times else 0.0
    total_decisions = sum(decided_per_shard)
    completed = sum(result.row["completed"].values())
    return {
        "shards": shard_count,
        "completed": completed,
        "forwards": result.forwards,
        "cross_shard_serves": result.cross_shard_serves,
        "inline": {
            "elapsed_seconds": inline_elapsed,
            "requests_per_second": (
                result.row.get("completed_total", completed) / inline_elapsed
                if inline_elapsed > 0
                else 0.0
            ),
        },
        "shard_seconds": shard_times,
        "shard_decisions": decided_per_shard,
        "critical_path_seconds": critical_path,
        "decisions_per_second": (
            total_decisions / critical_path if critical_path > 0 else 0.0
        ),
    }


def run_cluster_benchmark(quick: bool = False, algorithm: str = "ramcom") -> dict:
    """The full payload: one section per shard count plus the scaling row."""
    import os

    requests, workers = (400, 400) if quick else (1600, 1600)
    scenario, config = _build(requests, workers)
    counts = _SHARD_COUNTS[:-1] if quick else _SHARD_COUNTS
    sections: dict[str, dict] = {}
    for count in counts:
        sections[str(count)] = asyncio.run(
            _bench_shard_count(scenario, config, count, algorithm)
        )
    base = sections["1"]["critical_path_seconds"]
    scaling: dict[str, float] = {}
    for count in counts[1:]:
        path = sections[str(count)]["critical_path_seconds"]
        scaling[str(count)] = base / path if path > 0 else 0.0
    return {
        "benchmark": "cluster",
        "schema": 1,
        "mode": "quick" if quick else "full",
        "algorithm": algorithm,
        "cpus": os.cpu_count() or 1,
        "trace": {"requests": requests, "workers": workers},
        "sanitized": True,
        "shard_counts": list(counts),
        "sections": sections,
        "scaling": {
            # 1-shard critical path over each N-shard critical path: the
            # parallel speedup a real N-process deployment realizes.
            "modeled_speedup": scaling,
            "floor": SCALING_FLOOR,
            "conservation_floor": CONSERVATION_FLOOR,
        },
    }


def render_cluster_report(payload: dict) -> str:
    lines = [
        f"cluster benchmark ({payload['mode']}, "
        f"{payload['trace']['requests']} requests, sanitizer on)"
    ]
    for count in payload["shard_counts"]:
        row = payload["sections"][str(count)]
        speedup = payload["scaling"]["modeled_speedup"].get(str(count))
        modeled = f"   modeled {speedup:.2f}x" if speedup is not None else ""
        lines.append(
            f"  {count} shard(s): critical path "
            f"{row['critical_path_seconds'] * 1000:>8.1f} ms   "
            f"{row['decisions_per_second']:>8.0f} dec/s   "
            f"completed {row['completed']:>4d}   "
            f"forwards {row['forwards']:>4d}{modeled}"
        )
    lines.append(
        f"  gate: modeled 4-shard speedup >= "
        f"{payload['scaling']['floor']:.1f}x, completion >= "
        f"{payload['scaling']['conservation_floor']:.0%} of 1-shard"
    )
    return "\n".join(lines)


def check_cluster_regression(
    result: dict,
    reference_path: str | Path,
    tolerance: float = 0.15,
) -> list[str]:
    """Gate scaling and conservation; returns human-readable failures.

    The modeled speedup is built from per-shard times measured in
    isolation on the same host, so the ratio is machine-independent —
    it is gated against the absolute :data:`SCALING_FLOOR` and, with
    ``tolerance`` slack, against the checked-in reference's ratio.
    Absolute decisions/sec are reported but never gated on.
    """
    failures: list[str] = []
    reference = json.loads(Path(reference_path).read_text())
    speedups = result["scaling"]["modeled_speedup"]
    floor = result["scaling"]["floor"]
    # Quick mode runs a trace small enough that scheduler noise moves the
    # critical path by ~10%; it gates against the floor with the same
    # slack as the reference drift, while full mode gates strictly.
    if result.get("mode") == "quick":
        floor *= 1.0 - tolerance
    measured_4 = speedups.get("4")
    if measured_4 is None:
        failures.append("scaling: no 4-shard section in the bench payload")
    elif measured_4 < floor:
        failures.append(
            f"scaling: modeled 4-shard speedup is {measured_4:.2f}x, below "
            f"the {floor:.2f}x floor (shard plan too imbalanced or "
            f"forwarding duplicating too much work)"
        )
    reference_4 = (
        reference.get("scaling", {}).get("modeled_speedup", {}).get("4")
    )
    if measured_4 is not None and reference_4 is not None:
        drift_floor = reference_4 * (1.0 - tolerance)
        if measured_4 < drift_floor:
            failures.append(
                f"scaling: modeled 4-shard speedup {measured_4:.2f}x fell "
                f"below {drift_floor:.2f}x (reference {reference_4:.2f}x - "
                f"{tolerance:.0%} tolerance)"
            )
    conservation = result["scaling"]["conservation_floor"]
    base_completed = result["sections"]["1"]["completed"]
    for count in result["shard_counts"]:
        completed = result["sections"][str(count)]["completed"]
        if base_completed > 0 and completed < conservation * base_completed:
            failures.append(
                f"conservation: {count}-shard cluster completed "
                f"{completed}/{base_completed} matches, below the "
                f"{conservation:.0%} floor — cross-shard forwarding is "
                f"losing border requests"
            )
    return failures
