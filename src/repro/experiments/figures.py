"""Figure 5: the twelve scalability panels.

The paper sweeps |R|, |W| and rad over the Table-IV grid and plots, for
TOTA / DemCOM / RamCOM, four metrics: total revenue, average response
time, memory cost, and the acceptance ratio of cooperative requests.  One
:func:`run_figure5_panel` call regenerates one panel's data series.

Panel map (axis x metric):

====== ============ =========== ======== ==============
 axis    revenue     time        memory   acceptance
====== ============ =========== ======== ==============
 |R|     5(a)        5(b)        5(c)     5(d)
 |W|     5(e)        5(f)        5(g)     5(h)
 rad     5(i)        5(j)        5(k)     5(l)
====== ============ =========== ======== ==============

Default sweep values follow Table IV; benches truncate the heaviest tails
by default (documented in EXPERIMENTS.md) — pass ``values=`` explicitly to
run the full grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.experiments.harness import ExperimentConfig, run_comparison
from repro.experiments.metrics import AlgorithmMetrics
from repro.utils.tables import TextTable, format_si
from repro.workloads.synthetic import (
    RADIUS_SWEEP,
    REQUEST_SWEEP,
    SyntheticWorkload,
    SyntheticWorkloadConfig,
    WORKER_SWEEP,
)

__all__ = ["FigurePanel", "run_figure5_panel", "run_figure5_axis", "PANEL_IDS"]

#: (axis, metric) -> paper panel letter.
PANEL_IDS = {
    ("requests", "revenue"): "5(a)",
    ("requests", "time"): "5(b)",
    ("requests", "memory"): "5(c)",
    ("requests", "acceptance"): "5(d)",
    ("workers", "revenue"): "5(e)",
    ("workers", "time"): "5(f)",
    ("workers", "memory"): "5(g)",
    ("workers", "acceptance"): "5(h)",
    ("radius", "revenue"): "5(i)",
    ("radius", "time"): "5(j)",
    ("radius", "memory"): "5(k)",
    ("radius", "acceptance"): "5(l)",
}

DEFAULT_ALGORITHMS = ["tota", "demcom", "ramcom"]

_AXIS_SWEEPS: dict[str, tuple] = {
    "requests": REQUEST_SWEEP,
    "workers": WORKER_SWEEP,
    "radius": RADIUS_SWEEP,
}


@dataclass
class FigurePanel:
    """One panel's data: x values and one series per algorithm."""

    panel_id: str
    axis: str
    metric: str
    x_values: list[float] = field(default_factory=list)
    #: algorithm -> series of metric values aligned with x_values.
    series: dict[str, list[float]] = field(default_factory=dict)

    def render(self) -> str:
        """Render the panel as an aligned text table (x down, algos across)."""
        algorithms = list(self.series.keys())
        table = TextTable(
            [self.axis] + algorithms,
            title=f"Fig. {self.panel_id} — {self.metric} vs {self.axis}",
        )
        for index, x in enumerate(self.x_values):
            row: list[object] = [format_si(x) if x >= 100 else f"{x:g}"]
            for algorithm in algorithms:
                row.append(self.series[algorithm][index])
            table.add_row(row)
        return table.render()

    def value(self, algorithm: str, x: float) -> float:
        """Look up one data point."""
        index = self.x_values.index(x)
        return self.series[algorithm][index]


def _metric_of(row: AlgorithmMetrics, metric: str) -> float:
    if metric == "revenue":
        return row.total_revenue
    if metric == "time":
        return row.response_time_ms
    if metric == "memory":
        return row.memory_mb
    if metric == "acceptance":
        return row.acceptance_ratio if row.acceptance_ratio is not None else 0.0
    raise ConfigurationError(f"unknown figure metric {metric!r}")


def run_figure5_panel(
    axis: str,
    metric: str,
    values: tuple | None = None,
    base: SyntheticWorkloadConfig | None = None,
    config: ExperimentConfig | None = None,
    algorithms: list[str] | None = None,
    scenario_seed: int = 11,
) -> FigurePanel:
    """Regenerate one Fig.-5 panel.

    ``axis`` is ``"requests"``, ``"workers"`` or ``"radius"``; ``metric``
    is ``"revenue"``, ``"time"``, ``"memory"`` or ``"acceptance"``.  The
    non-swept parameters stay at Table IV's defaults (|R|=2500, |W|=500,
    rad=1.0, real values) unless overridden via ``base``.
    """
    if axis not in _AXIS_SWEEPS:
        raise ConfigurationError(f"unknown sweep axis {axis!r}")
    panel_id = PANEL_IDS[(axis, metric)]
    sweep = values if values is not None else _AXIS_SWEEPS[axis]
    base = base or SyntheticWorkloadConfig()
    algorithms = algorithms or list(DEFAULT_ALGORITHMS)
    panel = FigurePanel(panel_id=panel_id, axis=axis, metric=metric)
    panel.series = {name: [] for name in algorithms}

    for x in sweep:
        workload_config = SyntheticWorkloadConfig(
            request_count=int(x) if axis == "requests" else base.request_count,
            worker_count=int(x) if axis == "workers" else base.worker_count,
            radius_km=float(x) if axis == "radius" else base.radius_km,
            value_distribution=base.value_distribution,
            city_km=base.city_km,
            hotspot_count=base.hotspot_count,
            skew=base.skew,
            arrival=base.arrival,
            horizon_seconds=base.horizon_seconds,
            history_length=base.history_length,
            platform_ids=base.platform_ids,
            behavior=base.behavior,
        )
        scenario = SyntheticWorkload(workload_config).build(seed=scenario_seed)
        rows = run_comparison(scenario, algorithms, config)
        panel.x_values.append(float(x))
        # run_comparison returns rows in request order, so zip against the
        # requested names (the registry is case-insensitive; display names
        # differ in case).
        for name, row in zip(algorithms, rows):
            panel.series[name].append(_metric_of(row, metric))
    return panel


def run_figure5_axis(
    axis: str,
    values: tuple | None = None,
    base: SyntheticWorkloadConfig | None = None,
    config: ExperimentConfig | None = None,
    algorithms: list[str] | None = None,
    scenario_seed: int = 11,
) -> dict[str, FigurePanel]:
    """Regenerate all four panels of one Fig.-5 row from a single sweep.

    The paper plots revenue, response time, memory and acceptance ratio
    over the *same* runs; computing them together quarters the sweep cost.
    Returns ``{metric: FigurePanel}``.
    """
    if axis not in _AXIS_SWEEPS:
        raise ConfigurationError(f"unknown sweep axis {axis!r}")
    sweep = values if values is not None else _AXIS_SWEEPS[axis]
    base = base or SyntheticWorkloadConfig()
    algorithms = algorithms or list(DEFAULT_ALGORITHMS)
    metrics = ("revenue", "time", "memory", "acceptance")
    panels = {
        metric: FigurePanel(
            panel_id=PANEL_IDS[(axis, metric)],
            axis=axis,
            metric=metric,
            series={name: [] for name in algorithms},
        )
        for metric in metrics
    }
    for x in sweep:
        workload_config = SyntheticWorkloadConfig(
            request_count=int(x) if axis == "requests" else base.request_count,
            worker_count=int(x) if axis == "workers" else base.worker_count,
            radius_km=float(x) if axis == "radius" else base.radius_km,
            value_distribution=base.value_distribution,
            city_km=base.city_km,
            hotspot_count=base.hotspot_count,
            skew=base.skew,
            arrival=base.arrival,
            horizon_seconds=base.horizon_seconds,
            history_length=base.history_length,
            platform_ids=base.platform_ids,
            behavior=base.behavior,
        )
        scenario = SyntheticWorkload(workload_config).build(seed=scenario_seed)
        rows = run_comparison(scenario, algorithms, config)
        for metric in metrics:
            panels[metric].x_values.append(float(x))
            for name, row in zip(algorithms, rows):
                panels[metric].series[name].append(_metric_of(row, metric))
    return panels
