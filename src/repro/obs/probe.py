"""Profiling hooks — the :class:`Probe` seam between engine and telemetry.

Every instrumented component (:class:`~repro.core.simulator.Simulator`,
:class:`~repro.core.base.PlatformContext`, the offer loop, the payment
estimator, :class:`~repro.faults.resilient.ResilientExchange`) talks to a
``Probe`` and nothing else.  Two implementations exist:

* :data:`NULL_PROBE` — the default.  Every method is a constant-time
  no-op and ``span()`` returns a shared null context manager, so the
  disabled path costs a few attribute lookups per decision; the
  ``benchmarks/bench_telemetry_overhead.py`` guard keeps it under the
  budget in ISSUE terms (<= 5% of mean decision latency).
  Components can also branch on ``probe.enabled`` to skip building label
  dicts entirely.
* :class:`TelemetryProbe` — routes counts/observations into a
  :class:`~repro.obs.metrics.MetricsRegistry` and (optionally) spans and
  instants into a :class:`~repro.obs.tracing.Tracer`.

The probe owns the *sim clock*: the simulator calls :meth:`Probe.advance`
as the event stream progresses and every span/instant is stamped with the
current sim time — the deterministic timeline of the trace.
"""

from __future__ import annotations

from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry, MetricsSnapshot
from repro.obs.summary import TelemetrySummary
from repro.obs.tracing import SpanHandle, Tracer

__all__ = ["Probe", "NullProbe", "NULL_PROBE", "TelemetryProbe", "Telemetry"]


class _NullSpan:
    """The shared do-nothing span handle."""

    __slots__ = ()

    def annotate(self, **fields: object) -> None:
        pass

    def end(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Probe:
    """The phase-boundary hook protocol (also the no-op base).

    Subclasses override whichever hooks they care about; the base class
    implements every hook as a no-op so new probe points never break
    existing probes.
    """

    #: Fast-path flag: instrumented code may skip label-building work
    #: (timers, dicts) when this is False.
    enabled: bool = False

    #: The current simulation time, advanced by the engine.
    sim_time: float = 0.0

    def advance(self, sim_time: float) -> None:
        """Move the probe's sim clock forward (never backward)."""
        if sim_time > self.sim_time:
            self.sim_time = sim_time

    def span(self, name: str, category: str = "sim", **fields: object):
        """Open a span at the current sim time (context manager)."""
        return _NULL_SPAN

    def instant(self, name: str, category: str = "sim", **fields: object) -> None:
        """Record a point event at the current sim time."""

    def count(self, name: str, value: float = 1.0, **labels: str) -> None:
        """Increment a labelled counter."""

    def observe(self, name: str, value: float, **labels: str) -> None:
        """Record a histogram observation."""

    def gauge(self, name: str, value: float, **labels: str) -> None:
        """Set a labelled gauge level."""


class NullProbe(Probe):
    """Explicit alias of the no-op base (what you get when telemetry is
    off)."""


#: Shared no-op instance used as the default everywhere.
NULL_PROBE = NullProbe()


class TelemetryProbe(Probe):
    """A probe backed by a registry and an optional tracer."""

    enabled = True

    def __init__(self, registry: MetricsRegistry, tracer: Tracer | None = None):
        self.registry = registry
        self.tracer = tracer
        self.sim_time = 0.0

    def span(self, name: str, category: str = "sim", **fields: object):
        if self.tracer is None:
            return _NULL_SPAN
        return self.tracer.span(name, self.sim_time, category, **fields)

    def instant(self, name: str, category: str = "sim", **fields: object) -> None:
        if self.tracer is not None:
            self.tracer.instant(name, self.sim_time, category, **fields)

    def count(self, name: str, value: float = 1.0, **labels: str) -> None:
        self.registry.counter(name).inc(value, **labels)

    def observe(self, name: str, value: float, **labels: str) -> None:
        self.registry.histogram(name).observe(value, **labels)

    def gauge(self, name: str, value: float, **labels: str) -> None:
        self.registry.gauge(name).set(value, **labels)


class Telemetry:
    """One run's telemetry bundle: registry + optional tracer + probe.

    Pass an instance as ``SimulatorConfig(telemetry=...)``; after the run,
    :meth:`summary` yields the :class:`TelemetrySummary` that also lands
    on ``SimulationResult.telemetry``, and — with ``tracing=True`` —
    :meth:`write_trace` dumps ``trace.jsonl`` and ``trace.chrome.json``.

    Parameters
    ----------
    tracing:
        Record spans/instants (metrics are always on).
    wall_clock:
        Include real profiling timings in trace records; turn off for
        byte-reproducible traces (see docs/OBSERVABILITY.md).
    """

    def __init__(self, tracing: bool = False, wall_clock: bool = True):
        self.registry = MetricsRegistry()
        self.tracer: Tracer | None = Tracer(wall_clock=wall_clock) if tracing else None
        self.probe: Probe = TelemetryProbe(self.registry, self.tracer)

    def snapshot(self) -> MetricsSnapshot:
        """The registry's current snapshot."""
        return self.registry.snapshot()

    def summary(self) -> TelemetrySummary:
        """Metrics snapshot plus trace statistics."""
        tracer = self.tracer
        return TelemetrySummary(
            metrics=self.registry.snapshot(),
            trace_events=tracer.event_count if tracer is not None else 0,
            span_counts=tracer.span_counts() if tracer is not None else {},
        )

    def write_trace(self, directory) -> dict[str, str]:
        """Write ``trace.jsonl`` + ``trace.chrome.json`` + ``metrics.json``
        under ``directory``; returns the written paths by artifact name."""
        import json
        from pathlib import Path

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths: dict[str, str] = {}
        if self.tracer is not None:
            jsonl = directory / "trace.jsonl"
            self.tracer.write_jsonl(jsonl)
            paths["trace_jsonl"] = str(jsonl)
            chrome = directory / "trace.chrome.json"
            self.tracer.export_chrome(chrome)
            paths["trace_chrome"] = str(chrome)
        metrics = directory / "metrics.json"
        metrics.write_text(
            json.dumps(self.registry.snapshot().as_dict(), indent=2, sort_keys=True)
        )
        paths["metrics"] = str(metrics)
        return paths
