"""The per-run telemetry digest attached to simulation results.

:class:`TelemetrySummary` is the JSON-facing view of one run's telemetry:
the full metrics snapshot plus light trace statistics.  It merges the way
the underlying snapshots do (counters/histograms sum), so per-platform or
per-run summaries pool into exactly the global one — the property tests
in ``tests/test_property_invariants.py`` pin that down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import MetricsSnapshot

__all__ = ["TelemetrySummary", "WALL_CLOCK_FAMILIES"]

#: Metric families whose *values* come from wall-clock reads (Stopwatch
#: timings).  Everything else in a summary is a deterministic function of
#: (scenario, seed); strip these before byte-level comparisons — e.g. the
#: parallel-vs-serial identity guarantee of
#: :class:`repro.experiments.parallel.ParallelRunner`.
WALL_CLOCK_FAMILIES: tuple[str, ...] = (
    "decision_seconds",
    "exchange_rpc_seconds",
)


@dataclass(frozen=True)
class TelemetrySummary:
    """Metrics snapshot + trace statistics for one simulation run."""

    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    #: Total trace records (spans + instants); 0 when tracing was off.
    trace_events: int = 0
    #: Span count per span name (empty when tracing was off).
    span_counts: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-ready view (used by the reporting layer)."""
        return {
            "metrics": self.metrics.as_dict(),
            "trace_events": self.trace_events,
            "span_counts": dict(self.span_counts),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TelemetrySummary":
        """Rebuild a summary from :meth:`as_dict` output."""
        return cls(
            metrics=MetricsSnapshot.from_dict(payload.get("metrics", {})),
            trace_events=payload.get("trace_events", 0),
            span_counts=dict(payload.get("span_counts", {})),
        )

    def merge(self, other: "TelemetrySummary") -> "TelemetrySummary":
        """Pool two summaries (metrics merge; trace stats sum)."""
        span_counts = dict(self.span_counts)
        for name, count in other.span_counts.items():
            span_counts[name] = span_counts.get(name, 0) + count
        return TelemetrySummary(
            metrics=self.metrics.merge(other.metrics),
            trace_events=self.trace_events + other.trace_events,
            span_counts=dict(sorted(span_counts.items())),
        )

    def counter_value(self, name: str, **labels: str) -> float:
        """Convenience passthrough to the snapshot."""
        return self.metrics.counter_value(name, **labels)

    def without_wall_clock(self) -> "TelemetrySummary":
        """The summary minus :data:`WALL_CLOCK_FAMILIES` — the part that is
        a deterministic function of (scenario, seed)."""
        return TelemetrySummary(
            metrics=self.metrics.without_families(*WALL_CLOCK_FAMILIES),
            trace_events=self.trace_events,
            span_counts=dict(self.span_counts),
        )
