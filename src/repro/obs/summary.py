"""The per-run telemetry digest attached to simulation results.

:class:`TelemetrySummary` is the JSON-facing view of one run's telemetry:
the full metrics snapshot plus light trace statistics.  It merges the way
the underlying snapshots do (counters/histograms sum), so per-platform or
per-run summaries pool into exactly the global one — the property tests
in ``tests/test_property_invariants.py`` pin that down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import MetricsSnapshot

__all__ = [
    "TelemetrySummary",
    "WALL_CLOCK_FAMILIES",
    "strip_wall_clock_families",
]

#: Metric families whose *values* come from wall-clock reads (Stopwatch
#: timings).  Everything else in a summary is a deterministic function of
#: (scenario, seed); strip these before byte-level comparisons — e.g. the
#: parallel-vs-serial identity guarantee of
#: :class:`repro.experiments.parallel.ParallelRunner`.
#: ``service_latency_seconds`` is the gateway's end-to-end wall latency
#: histogram (:mod:`repro.service.gateway`); ``claim_backoff_seconds`` is
#: *not* listed — its values are seeded simulated backoffs, deterministic
#: per (scenario, seed).
WALL_CLOCK_FAMILIES: tuple[str, ...] = (
    "decision_seconds",
    "exchange_rpc_seconds",
    "service_latency_seconds",
)

#: The three sections of a :meth:`MetricsSnapshot.as_dict` payload.
_SNAPSHOT_SECTIONS = ("counters", "gauges", "histograms")


def strip_wall_clock_families(payload: object) -> object:
    """Strip :data:`WALL_CLOCK_FAMILIES` from *nested* snapshot payloads.

    :meth:`MetricsSnapshot.without_families` only sees one flat snapshot;
    exported payloads (gateway ``stats``, the dashboard ``/state`` body,
    ``metrics_to_dict`` rows with telemetry attached) embed snapshot
    dicts at arbitrary depth.  This walks any JSON-shaped payload and
    removes wall-clock families from every ``counters`` / ``gauges`` /
    ``histograms`` section it finds, returning a filtered copy (the
    input is never mutated).
    """
    if isinstance(payload, dict):
        filtered: dict = {}
        for key, value in payload.items():
            if key in _SNAPSHOT_SECTIONS and isinstance(value, dict):
                filtered[key] = {
                    name: strip_wall_clock_families(entries)
                    for name, entries in value.items()
                    if name not in WALL_CLOCK_FAMILIES
                }
            else:
                filtered[key] = strip_wall_clock_families(value)
        return filtered
    if isinstance(payload, list):
        return [strip_wall_clock_families(item) for item in payload]
    return payload


@dataclass(frozen=True)
class TelemetrySummary:
    """Metrics snapshot + trace statistics for one simulation run."""

    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    #: Total trace records (spans + instants); 0 when tracing was off.
    trace_events: int = 0
    #: Span count per span name (empty when tracing was off).
    span_counts: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-ready view (used by the reporting layer)."""
        return {
            "metrics": self.metrics.as_dict(),
            "trace_events": self.trace_events,
            "span_counts": dict(self.span_counts),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TelemetrySummary":
        """Rebuild a summary from :meth:`as_dict` output."""
        return cls(
            metrics=MetricsSnapshot.from_dict(payload.get("metrics", {})),
            trace_events=payload.get("trace_events", 0),
            span_counts=dict(payload.get("span_counts", {})),
        )

    def merge(self, other: "TelemetrySummary") -> "TelemetrySummary":
        """Pool two summaries (metrics merge; trace stats sum)."""
        span_counts = dict(self.span_counts)
        for name, count in other.span_counts.items():
            span_counts[name] = span_counts.get(name, 0) + count
        return TelemetrySummary(
            metrics=self.metrics.merge(other.metrics),
            trace_events=self.trace_events + other.trace_events,
            span_counts=dict(sorted(span_counts.items())),
        )

    def counter_value(self, name: str, **labels: str) -> float:
        """Convenience passthrough to the snapshot."""
        return self.metrics.counter_value(name, **labels)

    def without_wall_clock(self) -> "TelemetrySummary":
        """The summary minus :data:`WALL_CLOCK_FAMILIES` — the part that is
        a deterministic function of (scenario, seed).

        Strips recursively via :func:`strip_wall_clock_families`, so
        wall-clock histogram series survive in *no* snapshot section even
        when a merged/pooled payload carries nested snapshot dicts.
        """
        payload = strip_wall_clock_families(self.metrics.as_dict())
        assert isinstance(payload, dict)
        return TelemetrySummary(
            metrics=MetricsSnapshot.from_dict(payload),
            trace_events=self.trace_events,
            span_counts=dict(self.span_counts),
        )
