"""The metrics registry — labelled counters, gauges and histograms.

A :class:`MetricsRegistry` is the numeric half of the telemetry substrate
(the :mod:`repro.obs.tracing` spans are the structural half).  It follows
the Prometheus data model without any dependency: a *family* is a named
metric (``decisions_total``), a *series* is one labelled instance of it
(``decisions_total{platform="A", kind="serve_inner"}``).

Design constraints, in order:

* **Mergeable.**  Snapshots from per-platform (or per-process) registries
  must combine into exactly the snapshot a single shared registry would
  have produced — counters and histograms sum, gauges sum too (a gauge
  here is a *shard-additive* level, e.g. waiting-list size per platform;
  see :meth:`MetricsSnapshot.merge`).  Merging is associative and
  commutative, which the property tests exercise.
* **Deterministic.**  Snapshots sort families and series so that equal
  measurement histories serialise to identical JSON.
* **Cheap.**  Recording is a dict lookup and a float add; the registry is
  only ever touched behind a :class:`~repro.obs.probe.Probe`, whose no-op
  default skips it entirely.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "DEFAULT_BUCKETS",
]

#: Label sets are kwargs at the call site, tuples of sorted items inside.
LabelKey = tuple[tuple[str, str], ...]

#: Default histogram bucket upper bounds (seconds-flavoured log scale, but
#: unit-agnostic: iteration counts and sim-seconds use them equally well).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6,
    1e-5,
    1e-4,
    1e-3,
    1e-2,
    1e-1,
    1.0,
    10.0,
    100.0,
    1000.0,
)


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing sum per label set."""

    __slots__ = ("name", "_series")

    def __init__(self, name: str):
        self.name = name
        self._series: dict[LabelKey, float] = {}

    def inc(self, value: float = 1.0, **labels: str) -> None:
        """Add ``value`` (must be >= 0) to the labelled series."""
        if value < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({value})")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + value

    def value(self, **labels: str) -> float:
        """Current value of one labelled series (0.0 if never touched)."""
        return self._series.get(_label_key(labels), 0.0)

    def series(self) -> dict[LabelKey, float]:
        """All series, keyed by sorted label tuples."""
        return dict(self._series)


class Gauge:
    """A settable level per label set.

    Gauges here are *shard-additive*: each shard (platform, process) sets
    its own labelled series and a merged snapshot sums them — the natural
    semantics for levels like waiting-worker counts or bytes held.
    """

    __slots__ = ("name", "_series")

    def __init__(self, name: str):
        self.name = name
        self._series: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        """Set the labelled series to ``value``."""
        self._series[_label_key(labels)] = float(value)

    def add(self, delta: float, **labels: str) -> None:
        """Adjust the labelled series by ``delta``."""
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + delta

    def value(self, **labels: str) -> float:
        """Current value of one labelled series (0.0 if never set)."""
        return self._series.get(_label_key(labels), 0.0)

    def series(self) -> dict[LabelKey, float]:
        """All series, keyed by sorted label tuples."""
        return dict(self._series)


class _HistogramSeries:
    """One labelled histogram: bucket counts plus running aggregates."""

    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self, n_buckets: int):
        # counts[i] = observations <= bounds[i]; counts[-1] = overflow.
        self.counts = [0] * (n_buckets + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float, bounds: tuple[float, ...]) -> None:
        self.counts[bisect.bisect_left(bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value


class Histogram:
    """A bucketed distribution per label set (cumulative on snapshot)."""

    __slots__ = ("name", "bounds", "_series")

    def __init__(self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS):
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name} bounds must strictly increase")
        self.name = name
        self.bounds = tuple(bounds)
        self._series: dict[LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation in the labelled series."""
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = _HistogramSeries(len(self.bounds))
            self._series[key] = series
        series.observe(value, self.bounds)

    def count(self, **labels: str) -> int:
        """Observation count of one labelled series."""
        series = self._series.get(_label_key(labels))
        return series.count if series is not None else 0

    def sum(self, **labels: str) -> float:
        """Observation sum of one labelled series."""
        series = self._series.get(_label_key(labels))
        return series.total if series is not None else 0.0

    def series(self) -> dict[LabelKey, _HistogramSeries]:
        """All series, keyed by sorted label tuples."""
        return dict(self._series)


@dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable, JSON-ready view of a registry at one instant.

    The payload (:meth:`as_dict`) is pure dicts/lists with sorted keys and
    sorted series, so equal histories produce byte-equal JSON.
    """

    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """The snapshot as plain JSON-serialisable dicts."""
        return {
            "counters": self.counters,
            "gauges": self.gauges,
            "histograms": self.histograms,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MetricsSnapshot":
        """Rebuild a snapshot from :meth:`as_dict` output."""
        return cls(
            counters=payload.get("counters", {}),
            gauges=payload.get("gauges", {}),
            histograms=payload.get("histograms", {}),
        )

    def counter_value(self, name: str, **labels: str) -> float:
        """One counter series' value (0.0 when absent)."""
        wanted = [list(pair) for pair in _label_key(labels)]
        for entry in self.counters.get(name, []):
            if entry["labels"] == wanted:
                return entry["value"]
        return 0.0

    def without_families(self, *names: str) -> "MetricsSnapshot":
        """A copy with the named metric families removed (any kind).

        Used to strip wall-clock-valued families (e.g. measured-latency
        histograms) before byte-level snapshot comparisons — everything
        else in a snapshot is a deterministic function of (scenario,
        seed); see :data:`repro.obs.WALL_CLOCK_FAMILIES`.
        """
        dropped = set(names)
        return MetricsSnapshot(
            counters={k: v for k, v in self.counters.items() if k not in dropped},
            gauges={k: v for k, v in self.gauges.items() if k not in dropped},
            histograms={
                k: v for k, v in self.histograms.items() if k not in dropped
            },
        )

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine two snapshots as if one registry had seen both histories.

        Counters and gauges sum per series; histograms sum bucket counts
        (bucket bounds must agree) and fold min/max/total.
        """
        counters = _merge_scalar(self.counters, other.counters)
        gauges = _merge_scalar(self.gauges, other.gauges)
        histograms = _merge_histograms(self.histograms, other.histograms)
        return MetricsSnapshot(
            counters=counters, gauges=gauges, histograms=histograms
        )


def _series_map(entries: list[dict]) -> dict[tuple, dict]:
    return {tuple(tuple(pair) for pair in e["labels"]): e for e in entries}


def _merge_scalar(a: dict, b: dict) -> dict:
    merged: dict = {}
    for name in sorted(set(a) | set(b)):
        by_label = _series_map([dict(e) for e in a.get(name, [])])
        for entry in b.get(name, []):
            key = tuple(tuple(pair) for pair in entry["labels"])
            if key in by_label:
                by_label[key]["value"] += entry["value"]
            else:
                by_label[key] = dict(entry)
        merged[name] = [by_label[key] for key in sorted(by_label)]
    return merged


def _merge_histograms(a: dict, b: dict) -> dict:
    merged: dict = {}
    for name in sorted(set(a) | set(b)):
        by_label = {
            key: _copy_hist(entry)
            for key, entry in _series_map(a.get(name, [])).items()
        }
        for entry in b.get(name, []):
            key = tuple(tuple(pair) for pair in entry["labels"])
            if key not in by_label:
                by_label[key] = _copy_hist(entry)
                continue
            ours = by_label[key]
            if ours["bounds"] != entry["bounds"]:
                raise ValueError(
                    f"cannot merge histogram {name}: bucket bounds differ"
                )
            ours["counts"] = [
                x + y for x, y in zip(ours["counts"], entry["counts"])
            ]
            ours["count"] += entry["count"]
            ours["sum"] += entry["sum"]
            ours["min"] = min(ours["min"], entry["min"])
            ours["max"] = max(ours["max"], entry["max"])
        merged[name] = [by_label[key] for key in sorted(by_label)]
    return merged


def _copy_hist(entry: dict) -> dict:
    out = dict(entry)
    out["counts"] = list(entry["counts"])
    return out


class MetricsRegistry:
    """Creates-or-returns metric families and snapshots the whole set."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter family ``name`` (created on first use)."""
        family = self._counters.get(name)
        if family is None:
            family = Counter(name)
            self._counters[name] = family
        return family

    def gauge(self, name: str) -> Gauge:
        """The gauge family ``name`` (created on first use)."""
        family = self._gauges.get(name)
        if family is None:
            family = Gauge(name)
            self._gauges[name] = family
        return family

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        """The histogram family ``name`` (created on first use).

        ``bounds`` only applies at creation; later calls with different
        bounds raise so series within a family stay mergeable.
        """
        family = self._histograms.get(name)
        if family is None:
            family = Histogram(name, bounds)
            self._histograms[name] = family
        elif family.bounds != tuple(bounds) and bounds is not DEFAULT_BUCKETS:
            raise ValueError(
                f"histogram {name} already registered with different bounds"
            )
        return family

    def snapshot(self) -> MetricsSnapshot:
        """A deterministic point-in-time copy of every series."""
        counters = {
            name: [
                {"labels": [list(pair) for pair in key], "value": value}
                for key, value in sorted(family.series().items())
            ]
            for name, family in sorted(self._counters.items())
        }
        gauges = {
            name: [
                {"labels": [list(pair) for pair in key], "value": value}
                for key, value in sorted(family.series().items())
            ]
            for name, family in sorted(self._gauges.items())
        }
        histograms = {}
        for name, family in sorted(self._histograms.items()):
            entries = []
            for key, series in sorted(family.series().items()):
                entries.append(
                    {
                        "labels": [list(pair) for pair in key],
                        "bounds": list(family.bounds),
                        "counts": list(series.counts),
                        "count": series.count,
                        "sum": series.total,
                        "min": series.min,
                        "max": series.max,
                    }
                )
            histograms[name] = entries
        return MetricsSnapshot(
            counters=counters, gauges=gauges, histograms=histograms
        )
