"""Unified telemetry substrate: metrics, tracing, and profiling hooks.

Zero-dependency observability for the COM engine, in three pillars:

* :mod:`repro.obs.metrics` — a labelled-series **metrics registry**
  (:class:`Counter` / :class:`Gauge` / :class:`Histogram`) with
  deterministic, mergeable snapshots;
* :mod:`repro.obs.tracing` — a **span tracer** emitting structured JSONL
  and Chrome/Perfetto trace-event JSON;
* :mod:`repro.obs.probe` — the **profiling-hook seam**: engine components
  call a :class:`Probe` at phase boundaries; the default
  :data:`NULL_PROBE` is a measured-negligible no-op, and
  :class:`Telemetry` bundles a live registry + tracer for a run.

Layering: ``repro.obs`` sits below :mod:`repro.core` and imports nothing
from the rest of the package (mirroring :mod:`repro.utils`).  See
docs/OBSERVABILITY.md for the architecture, probe-point catalogue and
trace schema.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.probe import NULL_PROBE, NullProbe, Probe, Telemetry, TelemetryProbe
from repro.obs.summary import WALL_CLOCK_FAMILIES, TelemetrySummary
from repro.obs.tracing import SpanHandle, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Probe",
    "NullProbe",
    "NULL_PROBE",
    "TelemetryProbe",
    "Telemetry",
    "TelemetrySummary",
    "WALL_CLOCK_FAMILIES",
    "SpanHandle",
    "Tracer",
]
