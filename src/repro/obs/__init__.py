"""Unified telemetry substrate: metrics, tracing, and profiling hooks.

Zero-dependency observability for the COM engine, in three pillars:

* :mod:`repro.obs.metrics` — a labelled-series **metrics registry**
  (:class:`Counter` / :class:`Gauge` / :class:`Histogram`) with
  deterministic, mergeable snapshots;
* :mod:`repro.obs.tracing` — a **span tracer** emitting structured JSONL
  and Chrome/Perfetto trace-event JSON;
* :mod:`repro.obs.probe` — the **profiling-hook seam**: engine components
  call a :class:`Probe` at phase boundaries; the default
  :data:`NULL_PROBE` is a measured-negligible no-op, and
  :class:`Telemetry` bundles a live registry + tracer for a run;
* :mod:`repro.obs.events` — the **gateway event log** (``COMEVT1``): an
  append-only JSONL stream of arrivals/decisions/sheds/breaker-trips
  behind the :class:`EventSink` seam (:data:`NULL_EVENT_SINK` default),
  whose canonical projection replays byte-identically
  (``com-repro replay-events --verify``; docs/DASHBOARD.md).

Layering: ``repro.obs`` sits below :mod:`repro.core` and imports nothing
from the rest of the package (mirroring :mod:`repro.utils`).  See
docs/OBSERVABILITY.md for the architecture, probe-point catalogue and
trace schema.
"""

from repro.obs.events import (
    CANONICAL_KINDS,
    EVENT_FORMAT,
    EVENT_SCHEMA,
    NULL_EVENT_SINK,
    OPS_KINDS,
    EventLog,
    EventSink,
    GatewayEvent,
    canonical_projection,
    encode_canonical,
    read_events,
    row_digest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.probe import NULL_PROBE, NullProbe, Probe, Telemetry, TelemetryProbe
from repro.obs.summary import (
    WALL_CLOCK_FAMILIES,
    TelemetrySummary,
    strip_wall_clock_families,
)
from repro.obs.tracing import SpanHandle, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Probe",
    "NullProbe",
    "NULL_PROBE",
    "TelemetryProbe",
    "Telemetry",
    "TelemetrySummary",
    "WALL_CLOCK_FAMILIES",
    "strip_wall_clock_families",
    "SpanHandle",
    "Tracer",
    "EVENT_SCHEMA",
    "EVENT_FORMAT",
    "CANONICAL_KINDS",
    "OPS_KINDS",
    "EventSink",
    "NULL_EVENT_SINK",
    "EventLog",
    "GatewayEvent",
    "canonical_projection",
    "encode_canonical",
    "read_events",
    "row_digest",
]
