"""The ``COMEVT1`` gateway event log: live ops telemetry that replays.

One append-only JSONL stream records everything a running
:class:`~repro.service.gateway.MatchingGateway` does — arrivals,
decisions with payment and platform attribution, shed requests, breaker
trips, crash/recovery markers, periodic metrics snapshots.  The stream
serves two masters at once:

* **live ops** — the dashboard (:mod:`repro.service.dashboard`) tails it
  over SSE and renders the map/heatmap/panel view;
* **replay** — the *canonical* subset of the stream is a complete,
  deterministic record of the run's inputs and outputs.  Re-driving the
  recorded arrivals through a fresh engine regenerates the canonical
  stream **byte-identically** (``com-repro replay-events --verify``),
  which unifies the event log with the journal/trace/replay machinery.

Event taxonomy:

* :data:`CANONICAL_KINDS` (``meta`` / ``worker`` / ``decision`` /
  ``resolution`` / ``shed`` / ``drain``) — a pure function of the trace;
  these survive the canonical projection.  A ``decision`` event carries
  the full request wire entity alongside the outcome, so one event per
  request records both the arrival and what the engine did with it.
* :data:`OPS_KINDS` (``breaker`` / ``metrics`` / ``crash`` /
  ``recovered``) — operational annotations (wall-clock values, failure
  markers); stripped by :func:`canonical_projection`, which is what
  "byte-identical modulo crash markers" means.

Every line is one JSON object encoded by :func:`encode_canonical`
(sorted keys, compact separators) with a ``kind`` / ``seq`` / ``time``
envelope; the projection drops ``seq`` (a process-local counter that
restarts mid-stream numbering never disturbs) and any ``wall`` field
(reserved for wall-clock payloads).  The file tail is crash-tolerant the
same way the journal's is: a torn trailing line is truncated on
:meth:`EventLog.resume`, corruption anywhere earlier raises
:class:`~repro.errors.EventLogError`.

The write path mirrors the :class:`~repro.obs.probe.Probe` seam:
:class:`EventSink` is the no-op default (a couple of ``enabled`` flag
reads per decision — budgeted like the probe's disabled path), and
:class:`EventLog` is the live implementation with an in-memory ring for
SSE catch-up, bounded per-subscriber queues that drop (and count) on
backpressure, and counters mirrored into a
:class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import time
from collections import deque
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from pathlib import Path
from typing import IO

from repro.errors import EventLogError
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "EVENT_SCHEMA",
    "EVENT_FORMAT",
    "CANONICAL_KINDS",
    "OPS_KINDS",
    "EventSink",
    "NULL_EVENT_SINK",
    "EventLog",
    "GatewayEvent",
    "canonical_projection",
    "encode_canonical",
    "read_events",
    "row_digest",
]

#: Schema tag carried by every stream's ``meta`` event.
EVENT_SCHEMA = "COMEVT1"
#: Bumped on incompatible envelope changes.
EVENT_FORMAT = 1

#: Kinds that are a deterministic function of the trace — the replayable
#: record.  :func:`canonical_projection` keeps exactly these.
CANONICAL_KINDS = frozenset(
    {"meta", "worker", "decision", "resolution", "shed", "drain"}
)
#: Operational kinds (wall-clock content, failure markers); informative
#: for dashboards, excluded from byte-identity comparisons.
OPS_KINDS = frozenset({"breaker", "metrics", "crash", "recovered"})

#: Envelope keys owned by the log itself; ``emit`` fields must not collide.
_ENVELOPE_KEYS = frozenset({"kind", "seq", "time"})


def encode_canonical(payload: object) -> bytes:
    """The one true event/row encoding: sorted keys, compact separators.

    Every byte-identity comparison in the event-log machinery (stream
    projections, metric-row digests) goes through this single encoder so
    there is exactly one way to serialise a record.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def row_digest(row: dict) -> str:
    """SHA-256 hex digest of a metric row's canonical encoding.

    The ``drain`` event carries this, which makes a recorded stream
    self-verifying: replay recomputes the digest from its own drained
    row, and the canonical byte comparison then covers the metrics too.
    """
    return hashlib.sha256(encode_canonical(row)).hexdigest()


@dataclass(frozen=True, slots=True)
class GatewayEvent:
    """One decoded event: the envelope plus its kind-specific fields."""

    seq: int
    kind: str
    time: float
    fields: dict

    def as_dict(self) -> dict:
        """The full JSON-ready record (what the file line holds)."""
        payload = {"kind": self.kind, "seq": self.seq, "time": self.time}
        payload.update(self.fields)
        return payload

    def canonical_dict(self) -> dict:
        """The record minus ``seq`` and any ``wall`` payload.

        ``seq`` is process-local (a recovered process resumes numbering,
        a replay restarts it); ``wall`` is reserved for wall-clock
        observations.  Neither may disturb byte-identity.
        """
        payload = {"kind": self.kind, "time": self.time}
        for key, value in self.fields.items():
            if key != "wall":
                payload[key] = value
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "GatewayEvent":
        """Decode one record; raises :class:`EventLogError` if malformed."""
        try:
            seq = int(payload["seq"])
            kind = str(payload["kind"])
            at = float(payload["time"])
        except (KeyError, TypeError, ValueError) as error:
            raise EventLogError(
                f"event record missing or malformed envelope: {payload!r}"
            ) from error
        fields = {
            key: value
            for key, value in payload.items()
            if key not in _ENVELOPE_KEYS
        }
        return cls(seq=seq, kind=kind, time=at, fields=fields)


def canonical_projection(events: Iterable[GatewayEvent]) -> bytes:
    """The replay-comparable bytes of a stream.

    Keeps :data:`CANONICAL_KINDS` only, drops ``seq``/``wall``, encodes
    each record with :func:`encode_canonical`, one per line.  Two runs
    of the same trace — live vs replayed, crashed-and-recovered vs
    uninterrupted — must produce equal projections.
    """
    lines = [
        encode_canonical(event.canonical_dict())
        for event in events
        if event.kind in CANONICAL_KINDS
    ]
    if not lines:
        return b""
    return b"\n".join(lines) + b"\n"


def _scan(path: Path) -> tuple[list[GatewayEvent], int]:
    """Decode a stream file; returns (events, intact byte length).

    A torn trailing line (no newline, or undecodable) is dropped and
    excluded from the intact length — the crash-tolerant tail.  Any
    earlier malformed line raises :class:`EventLogError`.
    """
    raw = path.read_bytes()
    events: list[GatewayEvent] = []
    intact = 0
    offset = 0
    while offset < len(raw):
        newline = raw.find(b"\n", offset)
        if newline < 0:
            break  # torn tail: bytes past the last newline
        line = raw[offset:newline]
        if line:
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise EventLogError(
                    f"{path}: undecodable event line at byte {offset} "
                    f"(not the torn tail): {error}"
                ) from None
            if not isinstance(payload, dict):
                raise EventLogError(
                    f"{path}: event line at byte {offset} is not an object"
                )
            events.append(GatewayEvent.from_dict(payload))
        offset = newline + 1
        intact = offset
    return events, intact


def read_events(path: str | Path) -> list[GatewayEvent]:
    """Read a recorded ``COMEVT1`` stream (torn trailing line tolerated)."""
    events, __ = _scan(Path(path))
    return events


class EventSink:
    """The no-op default sink — the event-log analogue of ``NULL_PROBE``.

    Decision-path code guards every emission with ``sink.enabled``, so a
    gateway without an event log pays only attribute reads (budgeted at
    <= 5% of mean decision latency by the service benchmark's
    ``event_overhead.disabled`` gate).
    """

    __slots__ = ()

    enabled: bool = False

    def emit(self, kind: str, at: float, **fields: object) -> None:
        """Record one event (no-op here)."""
        return None

    def flush(self) -> None:
        """Push buffered bytes to the OS (no-op here)."""
        return None

    def close(self) -> None:
        """Flush and release the underlying file (no-op here)."""
        return None


#: Shared no-op sink; safe to share because it holds no state.
NULL_EVENT_SINK = EventSink()

#: Deferred file writes are encoded in batches of this many events.
_WRITE_BATCH = 256


class EventLog(EventSink):
    """The live sink: JSONL file + in-memory ring + SSE subscriptions.

    ``path=None`` keeps the stream purely in memory (dashboard without
    persistence, golden runs in tests); ``ring=0`` makes the in-memory
    ring unbounded (needed when the ring *is* the record).  Subscriber
    queues are bounded: a slow consumer loses events (counted in
    :attr:`dropped` and ``service_events_dropped_total``) instead of
    stalling the decision loop — SSE clients resynchronise from the ring
    by ``seq``.
    """

    __slots__ = (
        "path",
        "next_seq",
        "emitted",
        "dropped",
        "guard",
        "_file",
        "_pending",
        "_ring",
        "_registry",
        "_counter",
        "_subscribers",
        "_observers",
        "_queue_limit",
        "_epoch",
        "_closed",
        "_write_scheduled",
    )

    enabled = True

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        registry: MetricsRegistry | None = None,
        ring: int = 4096,
        queue_limit: int = 1024,
    ):
        self.path = Path(path) if path is not None else None
        self.next_seq = 0
        #: Events emitted by this process (``next_seq`` counts the whole
        #: file after a resume; this counts our own lifetime only).
        self.emitted = 0
        #: Events dropped on subscriber backpressure.
        self.dropped = 0
        self._file: IO[bytes] | None = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = self.path.open("wb")
        #: Write-behind buffer: events whose JSON encoding is deferred off
        #: the decision path until a batch boundary or :meth:`flush`.
        self._pending: list[GatewayEvent] = []
        self._ring: deque[GatewayEvent] = (
            deque(maxlen=ring) if ring > 0 else deque()
        )
        self._registry = registry
        self._counter = (
            registry.counter("service_events_total")
            if registry is not None
            else None
        )
        self._subscribers: list[asyncio.Queue] = []
        self._observers: list[Callable[[GatewayEvent], None]] = []
        self._queue_limit = queue_limit
        self._epoch = time.monotonic()
        self._closed = False
        #: Optional concurrency-sanitizer guard over the ring/pending
        #: buffers (set by the gateway when the sanitizer is enabled).
        self.guard = None
        #: True while a deferred batch write is parked on the event loop.
        self._write_scheduled = False

    @classmethod
    def resume(
        cls,
        path: str | Path,
        *,
        registry: MetricsRegistry | None = None,
        ring: int = 4096,
        queue_limit: int = 1024,
    ) -> "EventLog":
        """Reopen a stream a crashed process left behind.

        Scans the file, truncates a torn trailing line, seeds the ring
        with the recorded tail, and continues ``seq`` numbering where
        the file left off — the recovered gateway appends to the same
        stream (:func:`canonical_projection` is what stays comparable
        across the crash, not raw bytes).
        """
        target = Path(path)
        recorded, intact = _scan(target)
        if intact < target.stat().st_size:
            os.truncate(target, intact)
        log = cls(
            path=None, registry=registry, ring=ring, queue_limit=queue_limit
        )
        log.path = target
        log._file = target.open("ab")
        log._ring.extend(recorded)
        log.next_seq = recorded[-1].seq + 1 if recorded else 0
        return log

    # -- the write path ------------------------------------------------------

    def emit(self, kind: str, at: float, **fields: object) -> None:
        """Append one event and fan it out (file, ring, subscribers).

        Synchronous and yield-free, so a batch of emissions from one
        decision is atomic with respect to other asyncio tasks.  File
        encoding is write-behind: the event lands in :attr:`_pending`
        and is JSON-encoded at the next batch boundary / :meth:`flush`,
        keeping the decision path's per-event cost to appends and
        counters (the ``event_overhead`` benchmark gate).
        """
        if self._closed:
            return
        if self.guard is not None:
            self.guard.check()
        if _ENVELOPE_KEYS & fields.keys():
            raise EventLogError(
                f"event fields may not shadow the envelope: {sorted(_ENVELOPE_KEYS & fields.keys())}"
            )
        event = GatewayEvent(seq=self.next_seq, kind=kind, time=at, fields=fields)
        self.next_seq += 1
        self.emitted += 1
        if self._file is not None:
            self._pending.append(event)
            if len(self._pending) >= _WRITE_BATCH and not self._write_scheduled:
                self._schedule_write()
        self._ring.append(event)
        if self._counter is not None:
            self._counter.inc(kind=kind)
        for queue in self._subscribers:
            try:
                queue.put_nowait(event)
            except asyncio.QueueFull:
                self.dropped += 1
                if self._registry is not None:
                    self._registry.counter(
                        "service_events_dropped_total"
                    ).inc(reason="slow_subscriber")
        if self._registry is not None and self._subscribers:
            self._registry.gauge("service_event_lag").set(self.lag)
        for observer in self._observers:
            observer(event)

    def _schedule_write(self) -> None:
        """Park the batch encode+write on the event loop, off the decision.

        ``call_soon`` runs :meth:`_drain_scheduled` after the current
        callback (the decision that filled the batch) completes, so the
        decision's ack is never behind a 256-event JSON encode.  The
        callback runs on the same loop, so file bytes stay in emission
        order and byte-identical to the inline path.  Outside any event
        loop (tests writing streams synchronously) the batch is encoded
        inline, as before.
        """
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            self._write_pending()
            return
        self._write_scheduled = True
        loop.call_soon(self._drain_scheduled)

    def _drain_scheduled(self) -> None:
        self._write_scheduled = False
        if not self._closed:
            self._write_pending()

    def _write_pending(self) -> None:
        """Encode and write the deferred batch in emission order."""
        if not self._pending or self._file is None:
            return
        self._file.write(
            b"".join(
                encode_canonical(event.as_dict()) + b"\n"
                for event in self._pending
            )
        )
        self._pending.clear()

    def flush(self) -> None:
        """Encode the pending batch and push buffered bytes to the OS."""
        if self._file is not None and not self._closed:
            self._write_pending()
            self._file.flush()

    def close(self) -> None:
        """Flush and release the file; further emissions are dropped."""
        if self._closed:
            return
        self._write_pending()
        self._closed = True
        if self._file is not None:
            self._file.flush()
            self._file.close()
            self._file = None

    # -- the read path -------------------------------------------------------

    def events(self, since: int = -1) -> list[GatewayEvent]:
        """Ring contents with ``seq > since`` (SSE catch-up)."""
        return [event for event in self._ring if event.seq > since]

    def subscribe(self) -> asyncio.Queue:
        """A bounded live queue of every future event."""
        queue: asyncio.Queue = asyncio.Queue(maxsize=self._queue_limit)
        self._subscribers.append(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        """Detach a queue from :meth:`subscribe`."""
        try:
            self._subscribers.remove(queue)
        except ValueError:
            pass

    def add_observer(self, observer: Callable[[GatewayEvent], None]) -> None:
        """Register a synchronous per-event callback (dashboard state).

        Observers run inline on the emitting (decision-loop) task; they
        must be cheap and must not raise.
        """
        self._observers.append(observer)

    # -- observability of the observer ---------------------------------------

    @property
    def lag(self) -> int:
        """Deepest subscriber backlog (0 with no subscribers)."""
        return max(
            (queue.qsize() for queue in self._subscribers), default=0
        )

    @property
    def events_per_second(self) -> float:
        """This process's emission rate over its lifetime (wall clock)."""
        elapsed = time.monotonic() - self._epoch
        return self.emitted / elapsed if elapsed > 0 else 0.0

    def stats(self) -> dict:
        """JSON-ready health row (the gateway ``stats`` verb's section)."""
        return {
            "path": str(self.path) if self.path is not None else None,
            "next_seq": self.next_seq,
            "emitted": self.emitted,
            "dropped": self.dropped,
            "subscribers": len(self._subscribers),
            "lag": self.lag,
            "events_per_second": self.events_per_second,
        }
