"""Structured span tracing with Chrome-trace export.

The tracer records a run as a flat list of *span* and *instant* records.
Each record carries two timelines:

* **Deterministic fields** — ``sim_time`` (the simulation clock at the
  span's opening), ``seq``/``end_seq`` (a global monotone event counter)
  and the span's name/category/args.  For a fixed scenario and seed these
  are a pure function of the run, so a :class:`Tracer` built with
  ``wall_clock=False`` writes byte-identical JSONL across invocations.
* **Non-deterministic fields** — real profiling data (``perf_counter``
  start and duration, microseconds) kept under the clearly-labelled
  ``"wall"`` key, present only when ``wall_clock=True``.

The Chrome export (:meth:`Tracer.export_chrome`) emits the trace-event
JSON understood by ``chrome://tracing`` and https://ui.perfetto.dev: one
``"X"`` (complete) event per span, one ``"i"`` event per instant, one
thread lane per ``tid`` label (the simulator uses platform ids).  With
wall-clock data the time axis is real microseconds; without it, the
deterministic ``seq`` counter is used so traces stay inspectable.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import IO

__all__ = ["Tracer", "SpanHandle"]


class SpanHandle:
    """An open span; close with ``__exit__`` or :meth:`end`."""

    __slots__ = ("_tracer", "_record", "_wall_start")

    def __init__(self, tracer: "Tracer", record: dict, wall_start: float | None):
        self._tracer = tracer
        self._record = record
        self._wall_start = wall_start

    def annotate(self, **fields: object) -> None:
        """Attach result fields (e.g. the decision kind) before the span
        closes."""
        self._record["args"].update(fields)

    def end(self) -> None:
        """Close the span (idempotent)."""
        record = self._record
        if record.get("end_seq") is not None:
            return
        tracer = self._tracer
        record["end_seq"] = tracer._next_seq()
        if self._wall_start is not None:
            record["wall"]["dur_us"] = round(
                (time.perf_counter() - self._wall_start) * 1e6, 3
            )
        tracer._open_spans -= 1

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.end()


class Tracer:
    """Collects span/instant records for one run.

    Parameters
    ----------
    wall_clock:
        Record real ``perf_counter`` timings under each record's
        ``"wall"`` key.  ``False`` yields fully deterministic output for
        a fixed (scenario, seed) — the determinism tests rely on it.
    """

    def __init__(self, wall_clock: bool = True):
        self.wall_clock = wall_clock
        self._records: list[dict] = []
        self._seq = 0
        self._open_spans = 0
        #: perf_counter at construction; wall timestamps are relative to
        #: it so traces start near t=0.
        self._wall_epoch = time.perf_counter() if wall_clock else 0.0

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # -- recording ----------------------------------------------------------

    def span(
        self, name: str, sim_time: float, category: str = "sim", **fields: object
    ) -> SpanHandle:
        """Open a span; use as a context manager or call ``end()``."""
        record: dict = {
            "type": "span",
            "name": name,
            "cat": category,
            "sim_time": sim_time,
            "seq": self._next_seq(),
            "end_seq": None,
            "args": dict(fields),
        }
        wall_start: float | None = None
        if self.wall_clock:
            wall_start = time.perf_counter()
            record["wall"] = {
                "start_us": round((wall_start - self._wall_epoch) * 1e6, 3),
                "dur_us": None,
            }
        self._records.append(record)
        self._open_spans += 1
        return SpanHandle(self, record, wall_start)

    def instant(
        self, name: str, sim_time: float, category: str = "sim", **fields: object
    ) -> None:
        """Record a point event (e.g. a breaker transition)."""
        record: dict = {
            "type": "instant",
            "name": name,
            "cat": category,
            "sim_time": sim_time,
            "seq": self._next_seq(),
            "args": dict(fields),
        }
        if self.wall_clock:
            record["wall"] = {
                "start_us": round(
                    (time.perf_counter() - self._wall_epoch) * 1e6, 3
                )
            }
        self._records.append(record)

    # -- introspection ------------------------------------------------------

    @property
    def event_count(self) -> int:
        """Total records so far (spans + instants)."""
        return len(self._records)

    def records(self) -> list[dict]:
        """The raw records, in opening order (do not mutate)."""
        return list(self._records)

    def span_counts(self) -> dict[str, int]:
        """Span count per name (closed or open), sorted by name."""
        counts: dict[str, int] = {}
        for record in self._records:
            if record["type"] == "span":
                counts[record["name"]] = counts.get(record["name"], 0) + 1
        return dict(sorted(counts.items()))

    # -- export -------------------------------------------------------------

    def write_jsonl(self, target: str | Path | IO[str]) -> None:
        """Write one JSON object per line, in opening order.

        Keys are sorted and floats are plain ``repr``, so two tracers with
        identical deterministic histories (``wall_clock=False``) produce
        byte-identical files.
        """
        if hasattr(target, "write"):
            self._write_jsonl(target)  # type: ignore[arg-type]
        else:
            with open(target, "w") as handle:
                self._write_jsonl(handle)

    def _write_jsonl(self, handle: IO[str]) -> None:
        for record in self._records:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")

    def export_chrome(self, target: str | Path | IO[str]) -> None:
        """Write Chrome trace-event JSON (open in Perfetto or
        ``chrome://tracing``)."""
        events = self.chrome_events()
        payload = {"traceEvents": events, "displayTimeUnit": "ms"}
        if hasattr(target, "write"):
            json.dump(payload, target, sort_keys=True)  # type: ignore[arg-type]
        else:
            with open(target, "w") as handle:
                json.dump(payload, handle, sort_keys=True)

    def chrome_events(self) -> list[dict]:
        """The trace-event list behind :meth:`export_chrome`."""
        tids: dict[str, int] = {}
        events: list[dict] = []

        def tid_for(record: dict) -> int:
            lane = str(record["args"].get("tid", record["cat"]))
            if lane not in tids:
                tids[lane] = len(tids) + 1
                events.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": 1,
                        "tid": tids[lane],
                        "args": {"name": lane},
                    }
                )
            return tids[lane]

        for record in self._records:
            args = {
                k: v for k, v in record["args"].items() if k != "tid"
            }
            args["sim_time"] = record["sim_time"]
            wall = record.get("wall")
            if record["type"] == "span":
                if wall is not None:
                    ts = wall["start_us"]
                    dur = wall["dur_us"] if wall["dur_us"] is not None else 0.0
                else:
                    # Deterministic fallback: one microsecond per seq tick.
                    ts = float(record["seq"])
                    end_seq = record["end_seq"] or record["seq"]
                    dur = float(end_seq - record["seq"])
                events.append(
                    {
                        "ph": "X",
                        "name": record["name"],
                        "cat": record["cat"],
                        "pid": 1,
                        "tid": tid_for(record),
                        "ts": ts,
                        "dur": dur,
                        "args": args,
                    }
                )
            else:
                ts = wall["start_us"] if wall is not None else float(record["seq"])
                events.append(
                    {
                        "ph": "i",
                        "name": record["name"],
                        "cat": record["cat"],
                        "pid": 1,
                        "tid": tid_for(record),
                        "ts": ts,
                        "s": "t",
                        "args": args,
                    }
                )
        return events
