"""Exception hierarchy for the COM reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError`, so
callers can catch a single base type.  More specific subclasses exist for the
distinct failure domains (model construction, simulation, matching
constraints, workload configuration, experiment harness).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class ConfigurationError(ReproError):
    """An object was constructed with invalid or inconsistent parameters."""


class ConstraintViolationError(ReproError):
    """A matching violated one of the COM constraints (Definition 2.6).

    Raised by the constraint checker when validating a matching; carries the
    name of the violated constraint for precise test assertions.
    """

    def __init__(self, constraint: str, message: str):
        super().__init__(f"{constraint}: {message}")
        self.constraint = constraint


class SimulationError(ReproError):
    """The online simulator reached an inconsistent state."""


class WorkloadError(ReproError):
    """A workload generator was asked for an impossible configuration."""


class GraphError(ReproError):
    """A graph algorithm received malformed input."""


class UnknownAlgorithmError(ReproError, KeyError):
    """An algorithm name was not found in the registry."""

    def __init__(self, name: str, known: list[str]):
        super().__init__(
            f"unknown algorithm {name!r}; registered algorithms: {sorted(known)}"
        )
        self.name = name
        self.known = sorted(known)
