"""Exception hierarchy for the COM reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError`, so
callers can catch a single base type.  More specific subclasses exist for the
distinct failure domains (model construction, simulation, matching
constraints, workload configuration, experiment harness).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class ConfigurationError(ReproError):
    """An object was constructed with invalid or inconsistent parameters."""


class ConstraintViolationError(ReproError):
    """A matching violated one of the COM constraints (Definition 2.6).

    Raised by the constraint checker when validating a matching; carries the
    name of the violated constraint for precise test assertions.
    """

    def __init__(self, constraint: str, message: str):
        super().__init__(f"{constraint}: {message}")
        self.constraint = constraint


class SimulationError(ReproError):
    """The online simulator reached an inconsistent state.

    Carries optional structured context (simulation time, platform,
    request and worker ids) so failures raised mid-replay are
    diagnosable; whatever is provided is appended to the message.
    """

    def __init__(
        self,
        message: str,
        *,
        time: float | None = None,
        platform_id: str | None = None,
        request_id: str | None = None,
        worker_id: str | None = None,
    ):
        self.sim_time = time
        self.platform_id = platform_id
        self.request_id = request_id
        self.worker_id = worker_id
        context = [
            f"{label}={value}"
            for label, value in (
                ("t", time),
                ("platform", platform_id),
                ("request", request_id),
                ("worker", worker_id),
            )
            if value is not None
        ]
        if context:
            message = f"{message} [{', '.join(context)}]"
        super().__init__(message)


class SanitizerViolation(SimulationError):
    """The runtime constraint sanitizer caught an invalid decision.

    Raised by :class:`repro.analysis.ConstraintSanitizer` (enabled via
    ``SimulatorConfig(sanitize=True)`` or ``COM_REPRO_SANITIZE=1``) the
    moment an assignment would break a Definition-2.6 constraint,
    waiting-list consistency, or ledger/revenue conservation — naming the
    violated constraint plus the request / worker / sim-time context.
    """

    def __init__(
        self,
        constraint: str,
        message: str,
        *,
        time: float | None = None,
        platform_id: str | None = None,
        request_id: str | None = None,
        worker_id: str | None = None,
    ):
        super().__init__(
            f"{constraint}: {message}",
            time=time,
            platform_id=platform_id,
            request_id=request_id,
            worker_id=worker_id,
        )
        self.constraint = constraint


class ConcurrencyViolation(SimulationError):
    """The concurrency sanitizer caught a cross-task mutation.

    Raised by :class:`repro.analysis.concurrency.ConcurrencyMonitor`
    (enabled via ``SimulatorConfig(sanitize_concurrency=True)``,
    ``serve --sanitize-concurrency`` or ``COM_REPRO_SANITIZE_CONCURRENCY=1``)
    when a structure owned by the gateway's decision loop — the session,
    the journal buffer, the event ring — is mutated from an asyncio task
    other than its recorded owner without an explicit
    :meth:`~repro.analysis.concurrency.OwnershipGuard.handoff`.
    """

    def __init__(
        self,
        structure: str,
        message: str,
        *,
        owner: str | None = None,
        intruder: str | None = None,
    ):
        context = [
            f"{label}={value}"
            for label, value in (("owner", owner), ("intruder", intruder))
            if value is not None
        ]
        suffix = f" [{', '.join(context)}]" if context else ""
        super().__init__(f"{structure}: {message}{suffix}")
        self.structure = structure
        self.owner = owner
        self.intruder = intruder


class ExchangeUnavailableError(SimulationError):
    """The cooperation exchange (or every reachable peer) is down.

    Raised by :class:`repro.faults.ResilientExchange` when an outage or an
    open circuit breaker leaves a platform with no cooperative view; the
    platform must fall back to inner-only (degraded-mode) matching.
    """


class ClaimConflictError(SimulationError):
    """A worker claim failed permanently (lost race, dropout, retries spent).

    The request that triggered the claim is rejected; the worker either
    stays available for later requests (transient lost-claim race) or is
    gone for good (mid-assignment dropout).
    """


class WorkloadError(ReproError):
    """A workload generator was asked for an impossible configuration."""


class ServiceError(ReproError):
    """The serving layer (:mod:`repro.service`) was misused or failed.

    Covers gateway lifecycle errors (submitting to a stopped gateway,
    querying a result before draining), protocol violations on the JSONL
    wire, and snapshot format mismatches.
    """


class JournalError(ServiceError):
    """The write-ahead event journal (``COMWAL1``) was misused or corrupt.

    Raised by :mod:`repro.service.journal` on framing violations that are
    *not* a recoverable torn tail — a foreign or mismatched file header,
    an out-of-sequence record, an append to a closed journal — and by
    recovery when a replayed decision diverges from its journaled outcome
    (which indicates the journal was produced by an incompatible engine
    version, not a crash).
    """


class EventLogError(ReproError):
    """The ``COMEVT1`` event log (:mod:`repro.obs.events`) is corrupt.

    Raised when a recorded event stream cannot be decoded — a malformed
    line *before* the tail (a torn trailing line is expected after a
    crash and silently truncated), a record missing its required
    ``kind``/``seq``/``time`` envelope, or a sequence discontinuity.
    """


class InducedCrash(ReproError):
    """A deterministic kill point fired (:class:`repro.faults.CrashPlan`).

    Simulates a fail-stop process crash at an exact, reproducible
    boundary (the Nth journal append / checkpoint / ack).  The gateway's
    decision loop dies with this exception and the server drops its
    connections without answering, exactly as a killed process would —
    the crash-recovery tests and the ``com-repro soak`` harness then
    exercise journal recovery against it.
    """


class GraphError(ReproError):
    """A graph algorithm received malformed input."""


class UnknownAlgorithmError(ReproError, KeyError):
    """An algorithm name was not found in the registry."""

    def __init__(self, name: str, known: list[str]):
        super().__init__(
            f"unknown algorithm {name!r}; registered algorithms: {sorted(known)}"
        )
        self.name = name
        self.known = sorted(known)
