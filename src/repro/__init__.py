"""Cross Online Matching (COM) in spatial crowdsourcing.

A from-scratch reproduction of

    Cheng, Li, Zhou, Yuan, Wang, Chen.
    "Real-Time Cross Online Matching in Spatial Crowdsourcing." ICDE 2020.

COM lets a spatial-crowdsourcing platform *borrow* unoccupied crowd workers
from cooperating platforms: an incoming request is served by an inner
worker when possible, otherwise offered to outer workers at an
incentive-compatible payment.  The package ships the full system:

* the problem model and online simulation engine (:mod:`repro.core`);
* the paper's two algorithms — :class:`~repro.core.DemCOM` (greedy,
  minimum outer payment via Monte-Carlo bisection) and
  :class:`~repro.core.RamCOM` (randomized value threshold + maximum-
  expected-revenue pricing);
* the baselines — TOTA (single-platform greedy) and OFF (offline optimum
  via max-weight bipartite matching), plus Greedy-RT / RANKING / Random
  extension baselines (:mod:`repro.baselines`);
* all substrates: spatial indexes (:mod:`repro.geo`), matching/flow
  algorithms (:mod:`repro.graph`), worker behaviour (:mod:`repro.behavior`),
  and workload generation including simulated DiDi/Yueche city traces
  (:mod:`repro.workloads`);
* an experiment harness regenerating every table and figure of the
  paper's evaluation (:mod:`repro.experiments`) and a CLI (``com-repro``).

Quickstart
----------
>>> from repro import SyntheticWorkload, SyntheticWorkloadConfig
>>> from repro import Simulator, SimulatorConfig, make_algorithm
>>> scenario = SyntheticWorkload(
...     SyntheticWorkloadConfig(request_count=200, worker_count=60, city_km=6.0)
... ).build(seed=1)
>>> result = Simulator(SimulatorConfig(seed=0)).run(
...     scenario, lambda: make_algorithm("ramcom")
... )
>>> result.total_completed > 0
True
"""

from repro.core import (
    DemCOM,
    RamCOM,
    Request,
    Worker,
    Scenario,
    SimulationResult,
    Simulator,
    SimulatorConfig,
    available_algorithms,
    make_algorithm,
    register_algorithm,
    validate_matching,
)
from repro.baselines import (
    TOTA,
    BatchMatching,
    GreedyRT,
    Ranking,
    solve_geocrowd,
    solve_offline,
    solve_offline_reentry,
)
from repro.workloads import (
    SyntheticWorkload,
    SyntheticWorkloadConfig,
    build_city_pair,
)
from repro.experiments import (
    ExperimentConfig,
    run_algorithm,
    run_city_table,
    run_comparison,
    run_figure5_panel,
)

__version__ = "1.0.0"

__all__ = [
    "Request",
    "Worker",
    "Scenario",
    "Simulator",
    "SimulatorConfig",
    "SimulationResult",
    "DemCOM",
    "RamCOM",
    "TOTA",
    "BatchMatching",
    "GreedyRT",
    "Ranking",
    "solve_geocrowd",
    "solve_offline",
    "solve_offline_reentry",
    "validate_matching",
    "make_algorithm",
    "register_algorithm",
    "available_algorithms",
    "SyntheticWorkload",
    "SyntheticWorkloadConfig",
    "build_city_pair",
    "ExperimentConfig",
    "run_algorithm",
    "run_comparison",
    "run_city_table",
    "run_figure5_panel",
    "__version__",
]
