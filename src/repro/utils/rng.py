"""Deterministic random-number plumbing.

Every stochastic component in the library (workload generators, worker
behaviour, DemCOM's Bernoulli acceptance draws, RamCOM's threshold draw,
Monte-Carlo payment sampling) receives an explicit :class:`random.Random`
instance.  This module centralises how those instances are derived from a
single experiment seed so that:

* the same experiment seed always reproduces the same results bit-for-bit;
* independent components get *independent* streams (deriving a child seed
  from a parent seed plus a label), so adding draws to one component never
  perturbs another.

The scheme hashes ``(seed, label)`` with SHA-256, which is stable across
Python versions and processes (unlike the built-in ``hash``).
"""

from __future__ import annotations

import hashlib
import random
from collections.abc import Iterator

__all__ = ["SeedSequence", "derive_rng", "derive_seed", "spawn_seeds"]

_MASK_64 = (1 << 64) - 1


def derive_seed(seed: int, label: str) -> int:
    """Derive a stable 64-bit child seed from ``seed`` and a string label."""
    payload = f"{seed:#x}|{label}".encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") & _MASK_64


def derive_rng(seed: int, label: str) -> random.Random:
    """Return a fresh :class:`random.Random` seeded from ``(seed, label)``."""
    return random.Random(derive_seed(seed, label))


def spawn_seeds(seed: int, label: str, count: int) -> list[int]:
    """Return ``count`` independent child seeds for repeated trials."""
    return [derive_seed(seed, f"{label}#{index}") for index in range(count)]


class SeedSequence:
    """A hierarchical seed namespace.

    ``SeedSequence(42).child("workload")`` and ``.child("behavior")`` give
    independent sub-namespaces; ``.rng("didi")`` materialises a generator.

    Example
    -------
    >>> root = SeedSequence(7)
    >>> a = root.child("workload").rng("requests")
    >>> b = root.child("workload").rng("requests")
    >>> a.random() == b.random()   # same path -> same stream
    True
    """

    def __init__(self, seed: int, path: str = ""):
        self.seed = int(seed)
        self.path = path

    def child(self, label: str) -> "SeedSequence":
        """Return a sub-namespace rooted at ``label``."""
        new_path = f"{self.path}/{label}" if self.path else label
        return SeedSequence(self.seed, new_path)

    def derived_seed(self, label: str = "") -> int:
        """Return the integer seed for ``label`` under this namespace."""
        full = f"{self.path}/{label}" if label else (self.path or "root")
        return derive_seed(self.seed, full)

    def rng(self, label: str = "") -> random.Random:
        """Return a generator for ``label`` under this namespace."""
        return random.Random(self.derived_seed(label))

    def streams(self, label: str, count: int) -> Iterator[random.Random]:
        """Yield ``count`` independent generators for repeated trials."""
        for index in range(count):
            yield self.rng(f"{label}#{index}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SeedSequence(seed={self.seed}, path={self.path!r})"
