"""Memory accounting for the paper's memory-cost metric (§V-C2).

The paper reports the resident memory of its C++ implementation.  A Python
process's RSS is dominated by the interpreter, so raw RSS would hide the
signal the paper plots (memory grows with |R| and |W|, flat in rad, nearly
identical across algorithms).  We therefore provide two complementary
meters:

* :func:`approximate_size_bytes` — a deep ``sys.getsizeof`` walk over the
  simulator's live data structures, giving an *analytic* footprint that
  scales exactly with the stored requests/workers (this is what the figure
  benches report);
* :class:`MemoryMeter` — a ``tracemalloc`` wrapper measuring real allocation
  deltas for callers who want interpreter-level truth.
"""

from __future__ import annotations

import sys
import tracemalloc
from collections.abc import Mapping

__all__ = ["approximate_size_bytes", "MemoryMeter"]

_ATOMIC_TYPES = (int, float, complex, bool, bytes, str, type(None), range)

#: Atoms counted per *reference*, not per object: whether two equal numbers
#: are the same CPython object is an interpreter accident (int caching,
#: constant folding) that pickling does not preserve, so id-deduplicating
#: them would make the metric differ between a scenario and its pickled
#: copy — breaking the parallel-runner byte-identity guarantee
#: (docs/PERFORMANCE.md).  str/bytes identity survives pickling (the
#: pickle memo covers them), so they stay id-deduplicated.
_VALUE_TYPES = (int, float, complex, bool, type(None))


def _container_size(obj: object) -> int:
    """``sys.getsizeof`` with canonical (not historical) capacity.

    A list grown by repeated ``append`` carries over-allocation slack,
    while the same list unpickled arrives compact — so raw ``getsizeof``
    would make the metric depend on each container's growth *history*,
    not its contents, and differ between an uninterrupted run and one
    resumed from a service snapshot (docs/SERVICE.md).  Measuring a
    freshly rebuilt copy makes the overhead a deterministic function of
    the element count alone.
    """
    if type(obj) is list:
        return sys.getsizeof(list(obj))
    if type(obj) is dict:
        return sys.getsizeof(dict(obj))
    if type(obj) is set:
        return sys.getsizeof(set(obj))
    return sys.getsizeof(obj)


def approximate_size_bytes(obj: object, _seen: set[int] | None = None) -> int:
    """Recursively approximate the memory footprint of ``obj`` in bytes.

    Follows containers (dict/list/tuple/set/frozenset), object ``__dict__``
    and ``__slots__``.  Shared sub-objects are counted once (cycle-safe),
    except plain numbers, which count per reference so the result is a
    function of the data's *values*, not of interpreter-level object
    sharing.  Atomic immutables are counted with plain ``sys.getsizeof``.
    """
    if isinstance(obj, _VALUE_TYPES):
        return sys.getsizeof(obj)
    if _seen is None:
        _seen = set()
    object_id = id(obj)
    if object_id in _seen:
        return 0
    _seen.add(object_id)

    numpy = sys.modules.get("numpy")
    if numpy is not None and isinstance(obj, numpy.ndarray):
        # Charge the fixed ndarray header plus the ``nbytes`` payload.
        # A view owns no payload, so it charges only its header here and
        # walks into its ``base`` array, whose buffer is counted once
        # through the shared ``_seen`` set however many views alias it.
        # ``numpy`` is looked up in ``sys.modules`` rather than imported:
        # the array backend is optional (docs/PERFORMANCE.md), and if no
        # other module imported numpy there cannot be an ndarray to size.
        header = object.__sizeof__(obj)
        if obj.base is None:
            return header + int(obj.nbytes)
        return header + approximate_size_bytes(obj.base, _seen)

    size = _container_size(obj)
    if isinstance(obj, _ATOMIC_TYPES):
        return size

    if isinstance(obj, Mapping):
        for key, value in obj.items():
            size += approximate_size_bytes(key, _seen)
            size += approximate_size_bytes(value, _seen)
        return size

    if isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            size += approximate_size_bytes(item, _seen)
        return size

    instance_dict = getattr(obj, "__dict__", None)
    if instance_dict is not None:
        size += approximate_size_bytes(instance_dict, _seen)
    slots = getattr(type(obj), "__slots__", ())
    if isinstance(slots, str):
        slots = (slots,)
    for slot in slots:
        if hasattr(obj, slot):
            size += approximate_size_bytes(getattr(obj, slot), _seen)
    return size


class MemoryMeter:
    """Measure real allocation deltas with ``tracemalloc``.

    Example
    -------
    >>> meter = MemoryMeter()
    >>> with meter:
    ...     data = list(range(100_000))
    >>> meter.peak_bytes > 0
    True
    """

    def __init__(self) -> None:
        self.current_bytes = 0
        self.peak_bytes = 0
        self._was_tracing = False

    def __enter__(self) -> "MemoryMeter":
        self._was_tracing = tracemalloc.is_tracing()
        if not self._was_tracing:
            tracemalloc.start()
        tracemalloc.reset_peak()
        self._baseline = tracemalloc.get_traced_memory()[0]
        return self

    def __exit__(self, *exc_info: object) -> None:
        current, peak = tracemalloc.get_traced_memory()
        self.current_bytes = max(0, current - self._baseline)
        self.peak_bytes = max(0, peak - self._baseline)
        if not self._was_tracing:
            tracemalloc.stop()
