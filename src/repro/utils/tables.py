"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper's tables report; this
module owns the formatting so tables V–VII and the figure-5 series all render
consistently (aligned columns, stable float formatting, optional markdown).
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["TextTable", "format_float", "format_si"]


def format_float(value: float, digits: int = 3) -> str:
    """Format a float with ``digits`` significant decimals, trimming noise.

    ``None`` and non-finite values render as ``-`` (the paper's tables use
    ``-`` for metrics that do not apply, e.g. |CoR| for TOTA).
    """
    if value is None:
        return "-"
    if isinstance(value, float) and (value != value or value in (float("inf"), float("-inf"))):
        return "-"
    text = f"{value:.{digits}f}"
    return text


def format_si(value: float) -> str:
    """Format a count with k/M suffixes, e.g. ``2500 -> 2.5k``."""
    if value >= 1_000_000:
        return f"{value / 1_000_000:g}M"
    if value >= 1_000:
        return f"{value / 1_000:g}k"
    return f"{value:g}"


class TextTable:
    """A small aligned-text table builder.

    >>> table = TextTable(["Method", "Rev"])
    >>> table.add_row(["TOTA", 1.343])
    >>> print(table.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], title: str | None = None):
        self.title = title
        self.headers = [str(header) for header in headers]
        self.rows: list[list[str]] = []

    def add_row(self, cells: Sequence[object]) -> None:
        """Append one row; cells are stringified (floats via format_float)."""
        rendered = []
        for cell in cells:
            if isinstance(cell, float):
                rendered.append(format_float(cell))
            elif cell is None:
                rendered.append("-")
            else:
                rendered.append(str(cell))
        if len(rendered) != len(self.headers):
            raise ValueError(
                f"row has {len(rendered)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(rendered)

    def _column_widths(self) -> list[int]:
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        return widths

    def render(self) -> str:
        """Render as an aligned plain-text table."""
        widths = self._column_widths()
        lines = []
        if self.title:
            lines.append(self.title)
        header_line = "  ".join(
            header.ljust(width) for header, width in zip(self.headers, widths)
        )
        lines.append(header_line)
        lines.append("  ".join("-" * width for width in widths))
        for row in self.rows:
            lines.append(
                "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
            )
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """Render as a GitHub-flavoured markdown table."""
        lines = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def render_csv(self) -> str:
        """Render as minimal CSV (no quoting; cells contain no commas)."""
        lines = [",".join(self.headers)]
        for row in self.rows:
            lines.append(",".join(row))
        return "\n".join(lines)
