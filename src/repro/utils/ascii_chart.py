"""ASCII line charts — plot figure panels without matplotlib.

The evaluation environment is offline and dependency-free, so the figure
benches and the CLI render their series as text charts: one marker per
algorithm, a left value axis, and the sweep values along the bottom.

>>> chart = AsciiChart(width=40, height=8)
>>> chart.add_series("a", [1.0, 2.0, 3.0])
>>> print(chart.render([10, 20, 30]))  # doctest: +SKIP
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.utils.tables import format_si

__all__ = ["AsciiChart", "render_panel"]

#: Marker characters assigned to series in insertion order.
MARKERS = "ox+*#@%&"


class AsciiChart:
    """A multi-series line chart rendered with text markers.

    Parameters
    ----------
    width, height:
        Plot-area size in characters (excluding axes and labels).
    """

    def __init__(self, width: int = 60, height: int = 12, title: str = ""):
        if width < 10 or height < 4:
            raise ConfigurationError("chart needs width >= 10 and height >= 4")
        self.width = width
        self.height = height
        self.title = title
        self._series: dict[str, list[float]] = {}

    def add_series(self, name: str, values: list[float]) -> None:
        """Add one named series; all series must share a length."""
        if not values:
            raise ConfigurationError(f"series {name!r} is empty")
        for existing in self._series.values():
            if len(existing) != len(values):
                raise ConfigurationError("all series must have equal length")
        if len(self._series) >= len(MARKERS):
            raise ConfigurationError(f"at most {len(MARKERS)} series supported")
        self._series[name] = list(values)

    def _scale(self) -> tuple[float, float]:
        lows, highs = [], []
        for values in self._series.values():
            lows.append(min(values))
            highs.append(max(values))
        low, high = min(lows), max(highs)
        if high == low:
            high = low + 1.0
        return low, high

    def render(self, x_labels: list[float] | None = None) -> str:
        """Render the chart; ``x_labels`` annotate the bottom axis."""
        if not self._series:
            raise ConfigurationError("no series to render")
        low, high = self._scale()
        length = len(next(iter(self._series.values())))
        grid = [[" "] * self.width for _ in range(self.height)]

        def column_of(index: int) -> int:
            if length == 1:
                return self.width // 2
            return round(index * (self.width - 1) / (length - 1))

        def row_of(value: float) -> int:
            fraction = (value - low) / (high - low)
            return (self.height - 1) - round(fraction * (self.height - 1))

        for marker, (name, values) in zip(MARKERS, self._series.items()):
            previous: tuple[int, int] | None = None
            for index, value in enumerate(values):
                column, row = column_of(index), row_of(value)
                # Connect consecutive points with a sparse dotted segment.
                if previous is not None:
                    prev_col, prev_row = previous
                    steps = max(abs(column - prev_col), abs(row - prev_row))
                    for step in range(1, steps):
                        interp_col = prev_col + round(
                            step * (column - prev_col) / steps
                        )
                        interp_row = prev_row + round(step * (row - prev_row) / steps)
                        if grid[interp_row][interp_col] == " ":
                            grid[interp_row][interp_col] = "."
                grid[row][column] = marker
                previous = (column, row)

        label_width = max(len(format_si(high)), len(format_si(low)))
        lines = []
        if self.title:
            lines.append(self.title)
        for row_index, row in enumerate(grid):
            if row_index == 0:
                label = format_si(high).rjust(label_width)
            elif row_index == self.height - 1:
                label = format_si(low).rjust(label_width)
            else:
                label = " " * label_width
            lines.append(f"{label} |{''.join(row)}")
        lines.append(" " * label_width + " +" + "-" * self.width)
        if x_labels:
            first = format_si(x_labels[0])
            last = format_si(x_labels[-1])
            padding = self.width - len(first) - len(last)
            lines.append(
                " " * (label_width + 2) + first + " " * max(1, padding) + last
            )
        legend = "   ".join(
            f"{marker}={name}" for marker, name in zip(MARKERS, self._series)
        )
        lines.append(" " * (label_width + 2) + legend)
        return "\n".join(lines)


def render_panel(panel, width: int = 60, height: int = 12) -> str:
    """Render a :class:`~repro.experiments.figures.FigurePanel` as a chart."""
    chart = AsciiChart(
        width=width,
        height=height,
        title=f"Fig. {panel.panel_id} — {panel.metric} vs {panel.axis}",
    )
    for name, values in panel.series.items():
        chart.add_series(name, values)
    return chart.render(panel.x_values)
