"""Shared utilities: deterministic RNG plumbing, timing, memory accounting,
streaming statistics, and plain-text table rendering.

These are the lowest layer of the library; nothing here imports from any
other :mod:`repro` subpackage except :mod:`repro.errors`.
"""

from repro.utils.rng import SeedSequence, derive_rng, spawn_seeds
from repro.utils.stats import RunningStats, quantile, summarize
from repro.utils.timer import Stopwatch, TimingAccumulator
from repro.utils.memory import MemoryMeter, approximate_size_bytes
from repro.utils.tables import TextTable, format_float, format_si
from repro.utils.ascii_chart import AsciiChart, render_panel

__all__ = [
    "SeedSequence",
    "derive_rng",
    "spawn_seeds",
    "RunningStats",
    "quantile",
    "summarize",
    "Stopwatch",
    "TimingAccumulator",
    "MemoryMeter",
    "approximate_size_bytes",
    "TextTable",
    "format_float",
    "format_si",
    "AsciiChart",
    "render_panel",
]
