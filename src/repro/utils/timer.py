"""Wall-clock timing helpers for the response-time metric (paper §V-C1).

The paper reports the *average response time of each request* — the latency
between a request arriving and the platform's serve/borrow/reject decision.
:class:`Stopwatch` wraps ``time.perf_counter`` and :class:`TimingAccumulator`
aggregates per-request latencies into streaming statistics.
"""

from __future__ import annotations

import time

from repro.utils.rng import derive_rng
from repro.utils.stats import RunningStats, quantile

__all__ = ["Stopwatch", "TimingAccumulator"]


class Stopwatch:
    """A restartable high-resolution stopwatch.

    Usable as a context manager::

        with Stopwatch() as watch:
            decide(request)
        latency = watch.elapsed_seconds

    When the wrapped block raises, the exception propagates and the watch
    is flagged ``failed`` — callers feeding a latency metric must skip
    flagged samples so aborted decisions don't contaminate the paper's
    response-time numbers (the elapsed time of a *failed* decision is
    still available for diagnostics).
    """

    __slots__ = ("_start", "elapsed_seconds", "failed")

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed_seconds = 0.0
        self.failed = False

    def start(self) -> "Stopwatch":
        """Begin (or restart) timing."""
        self._start = time.perf_counter()
        self.failed = False
        return self

    def stop(self) -> float:
        """Stop timing and return the elapsed seconds."""
        if self._start is None:
            raise RuntimeError("Stopwatch.stop() called before start()")
        self.elapsed_seconds = time.perf_counter() - self._start
        self._start = None
        return self.elapsed_seconds

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        self.stop()
        if exc_type is not None:
            self.failed = True


class TimingAccumulator:
    """Accumulates per-event latencies into streaming statistics.

    Latencies are recorded in seconds and reported in milliseconds, matching
    the paper's tables.  A bounded reservoir keeps a uniform sample of
    latencies so tail percentiles stay available without storing every
    measurement (100k requests would otherwise distort the memory metric).
    """

    RESERVOIR_SIZE = 1000

    def __init__(self) -> None:
        self._stats = RunningStats()
        self._reservoir: list[float] = []
        self._reservoir_rng = derive_rng(0x5EED, "timer/reservoir")
        #: Sorted view of the reservoir, rebuilt lazily on first percentile
        #: query after a mutation (repeated queries must not re-sort).
        self._sorted: list[float] | None = None

    def record(self, seconds: float) -> None:
        """Record one latency sample, in seconds."""
        self._stats.add(seconds)
        if len(self._reservoir) < self.RESERVOIR_SIZE:
            self._reservoir.append(seconds)
            self._sorted = None
        else:
            slot = self._reservoir_rng.randrange(self._stats.count)
            if slot < self.RESERVOIR_SIZE:
                self._reservoir[slot] = seconds
                self._sorted = None

    def samples(self) -> list[float]:
        """A copy of the reservoir sample of latencies, in seconds.

        Exhaustive while fewer than ``RESERVOIR_SIZE`` latencies were
        recorded; a uniform subsample afterwards.  Callers pooling
        percentiles across accumulators should use this instead of the
        private reservoir.
        """
        return list(self._reservoir)

    def percentile_ms(self, q: float) -> float:
        """Latency percentile in milliseconds, from the reservoir sample.

        Exact while fewer than ``RESERVOIR_SIZE`` samples were recorded; a
        uniform-sample estimate afterwards.  Returns 0.0 with no samples.
        The sorted view is cached between :meth:`record` calls, so
        querying many percentiles costs one sort, not one per query.
        """
        if not self._reservoir:
            return 0.0
        if self._sorted is None:
            self._sorted = sorted(self._reservoir)
        return quantile(self._sorted, q) * 1e3

    def time(self) -> Stopwatch:
        """Return a started stopwatch whose ``stop()`` must be recorded
        manually; provided for callers that need the raw value too."""
        return Stopwatch().start()

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return self._stats.count

    @property
    def mean_ms(self) -> float:
        """Mean latency in milliseconds (0.0 if no samples)."""
        if self._stats.count == 0:
            return 0.0
        return self._stats.mean * 1e3

    @property
    def max_ms(self) -> float:
        """Maximum latency in milliseconds (0.0 if no samples)."""
        if self._stats.count == 0:
            return 0.0
        return self._stats.max * 1e3

    @property
    def total_seconds(self) -> float:
        """Sum of all recorded latencies, in seconds."""
        return self._stats.total
