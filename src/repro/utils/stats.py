"""Streaming statistics used by the metrics layer.

:class:`RunningStats` implements Welford's online algorithm so the simulator
can track per-request response times for 100k requests without storing each
sample (memory accounting would otherwise be polluted by the measurement
itself).
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass

__all__ = ["RunningStats", "quantile", "summarize", "StatsSummary"]


class RunningStats:
    """Single-pass mean / variance / min / max accumulator.

    Uses Welford's numerically stable update.  Supports merging two
    accumulators (parallel sweeps) via :meth:`merge`.
    """

    __slots__ = ("count", "mean", "_m2", "min", "max", "total")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0

    def add(self, value: float) -> None:
        """Fold one sample into the accumulator."""
        self.count += 1
        self.total += value
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def extend(self, values: Iterable[float]) -> None:
        """Fold many samples."""
        for value in values:
            self.add(value)

    @property
    def variance(self) -> float:
        """Population variance (0.0 when fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Return a new accumulator equivalent to seeing both sample sets."""
        merged = RunningStats()
        merged.count = self.count + other.count
        merged.total = self.total + other.total
        if merged.count == 0:
            return merged
        delta = other.mean - self.mean
        merged.mean = self.mean + delta * other.count / merged.count
        merged._m2 = (
            self._m2
            + other._m2
            + delta * delta * self.count * other.count / merged.count
        )
        merged.min = min(self.min, other.min)
        merged.max = max(self.max, other.max)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RunningStats(count={self.count}, mean={self.mean:.6g}, "
            f"stddev={self.stddev:.6g})"
        )


@dataclass(frozen=True)
class StatsSummary:
    """Immutable snapshot of a sample's summary statistics."""

    count: int
    mean: float
    stddev: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float


def quantile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolated quantile of an already *sorted* sample.

    ``q`` in [0, 1].  Empty input raises ``ValueError`` rather than
    returning a silent NaN.
    """
    if not sorted_values:
        raise ValueError("quantile of empty sample")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return sorted_values[low]
    fraction = position - low
    return sorted_values[low] * (1.0 - fraction) + sorted_values[high] * fraction


def summarize(values: Iterable[float]) -> StatsSummary:
    """Compute a :class:`StatsSummary` for a finite sample."""
    data = sorted(values)
    if not data:
        raise ValueError("summarize of empty sample")
    stats = RunningStats()
    stats.extend(data)
    return StatsSummary(
        count=stats.count,
        mean=stats.mean,
        stddev=stats.stddev,
        minimum=data[0],
        maximum=data[-1],
        p50=quantile(data, 0.50),
        p95=quantile(data, 0.95),
        p99=quantile(data, 0.99),
    )
