"""The write-ahead event journal (``COMWAL1``) behind the gateway.

A snapshot alone makes recovery *coarse*: every decision since the last
checkpoint dies with the process.  The journal closes that window — the
gateway appends one durable record per accepted operation **before the
acknowledgement leaves the process**, so the set of acknowledged
decisions is always a prefix of the journal, and crash recovery (latest
checkpoint + journal suffix replayed through the deterministic engine)
reproduces the pre-crash state byte-for-byte.

File layout
-----------

An 8-byte header (``COMWAL1\\n``) followed by length-prefixed,
CRC32-framed records::

    +----------+----------+------------------+
    | len: u32 | crc: u32 | payload (len B)  |   big-endian, CRC of payload
    +----------+----------+------------------+

A payload is one compact JSON object — ``seq`` and ``kind`` first, then
kind-specific fields in deterministic insertion order (the writer never
sorts keys: encoding sits on the acknowledgement critical path, and
insertion order is already a pure function of the record) — carrying a
contiguous ``seq`` number, a ``kind`` and kind-specific fields:

``meta``
    journal birth certificate: algorithm, scenario name, journal format;
``worker`` / ``request``
    one accepted arrival — either the full entity in wire-dict shape or,
    when the arrival is the scenario's own canonical entity (replay
    interning), just a ``ref`` carrying its id (the checkpoint already
    holds the scenario, and the slim record keeps the ack critical path
    cheap); requests also carry the decided outcome (status, worker,
    payment), which recovery verifies replayed decisions against;
``resolution``
    a deferred request resolved asynchronously on a batch flush (replay
    regenerates these — the record exists so the outcome log survives a
    crash without replay);
``shed``
    a request refused by admission control (never entered the engine, so
    replay must *not* re-submit it);
``checkpoint``
    a ``COMSNAP1`` checkpoint landed; records before it are covered by
    the snapshot and recovery replays only the suffix.

Durability knobs
----------------

Appends are buffered and made durable by :meth:`Journal.commit` — the
gateway **group-commits**, flushing once per decision batch before any
of the batch's acknowledgements leave the process, so the per-record
cost on the ack critical path is encoding alone.  The ``fsync`` policy
decides what a commit does beyond flushing to the OS: ``"always"``
fsyncs every commit (no acknowledged decision can be lost even to an OS
crash), ``"interval"`` fsyncs once at least ``fsync_interval`` records
have accumulated since the last sync (bounded loss window on OS crash;
nothing acknowledged is lost on process crash — the common case —
because acks are only released after the flush), ``"never"`` leaves
syncing to the OS.  The threshold counts records, not wall seconds, so
the sync schedule is a function of the trace and its batching, never of
the clock.

Torn tails
----------

A crash mid-append leaves a partial frame at the tail.  :meth:`Journal.
open` scans the file, keeps the longest valid prefix, reports and
truncates the torn bytes, and positions appends after the last good
record.  Anything *before* the tail that fails its CRC is real
corruption and raises :class:`~repro.errors.JournalError` — only the
final frame of a file may legitimately be incomplete.
"""

from __future__ import annotations

import json
import math
import os
import struct
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import IO, TYPE_CHECKING

from repro.errors import ConfigurationError, JournalError
from repro.faults.crash import CrashInjector

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.analysis.concurrency import OwnershipGuard

__all__ = [
    "JOURNAL_FORMAT",
    "JOURNAL_MAGIC",
    "FSYNC_POLICIES",
    "JournalConfig",
    "JournalRecord",
    "Journal",
    "scan_journal",
]

#: Bump when the record schema changes.
JOURNAL_FORMAT = 1

JOURNAL_MAGIC = b"COMWAL1\n"

#: Accepted ``JournalConfig.fsync`` values.
FSYNC_POLICIES = ("always", "interval", "never")

_FRAME = struct.Struct(">II")


def _plain(text: str) -> bool:
    """True when ``text`` embeds in a JSON string without any escaping."""
    return (
        text.isascii()
        and text.isprintable()
        and '"' not in text
        and "\\" not in text
    )




@dataclass(frozen=True)
class JournalConfig:
    """Durability configuration for a journaled gateway.

    Attributes
    ----------
    directory:
        Where the journal (``events.walog``) and its rotating checkpoint
        (``checkpoint.snap``) live.
    fsync / fsync_interval:
        The fsync policy (see module docstring).  ``interval`` counts
        records, so the sync schedule is deterministic.
    checkpoint_every:
        Write a ``COMSNAP1`` checkpoint every this many journal records
        (0 disables periodic checkpoints; the initial checkpoint that
        anchors recovery is always written).  Checkpoints bound recovery
        *replay time*, not data loss — the journal alone bounds loss —
        and each one pickles the full session on the decision path, so
        the default cadence is deliberately coarse: replaying a few
        thousand records takes well under a second at engine speed,
        while checkpointing every few hundred would dominate serving
        cost.
    """

    directory: str | Path
    fsync: str = "interval"
    fsync_interval: int = 256
    checkpoint_every: int = 4096

    def __post_init__(self) -> None:
        if self.fsync not in FSYNC_POLICIES:
            raise ConfigurationError(
                f"fsync policy must be one of {FSYNC_POLICIES}, "
                f"got {self.fsync!r}"
            )
        if self.fsync_interval < 1:
            raise ConfigurationError(
                f"fsync_interval must be >= 1, got {self.fsync_interval}"
            )
        if self.checkpoint_every < 0:
            raise ConfigurationError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )

    @property
    def journal_path(self) -> Path:
        return Path(self.directory) / "events.walog"

    @property
    def checkpoint_path(self) -> Path:
        return Path(self.directory) / "checkpoint.snap"


@dataclass(frozen=True, slots=True)
class JournalRecord:
    """One decoded journal record."""

    seq: int
    kind: str
    fields: dict

    @classmethod
    def from_payload(cls, payload: dict) -> "JournalRecord":
        fields = dict(payload)
        try:
            seq = fields.pop("seq")
            kind = fields.pop("kind")
        except KeyError as error:
            raise JournalError(
                f"journal record missing field {error}"
            ) from error
        return cls(seq=int(seq), kind=str(kind), fields=fields)


@dataclass(frozen=True, slots=True)
class _Scan:
    """Result of walking a journal file."""

    records: list[JournalRecord]
    valid_bytes: int
    torn_bytes: int


def _scan_blob(blob: bytes, path: Path) -> _Scan:
    if not blob.startswith(JOURNAL_MAGIC):
        raise JournalError(f"{path}: not a COMWAL1 journal")
    records: list[JournalRecord] = []
    offset = len(JOURNAL_MAGIC)
    end = len(blob)
    while offset < end:
        start = offset
        if end - offset < _FRAME.size:
            break  # torn tail: partial frame header
        length, checksum = _FRAME.unpack_from(blob, offset)
        offset += _FRAME.size
        if end - offset < length:
            offset = start
            break  # torn tail: partial payload
        payload = blob[offset:offset + length]
        offset += length
        if zlib.crc32(payload) != checksum:
            if offset >= end:
                offset = start
                break  # torn tail: last frame half-written then overwritten
            raise JournalError(
                f"{path}: record at byte {start} failed its CRC32 with "
                f"{end - offset} intact bytes after it — mid-file "
                f"corruption, not a torn tail"
            )
        try:
            decoded = json.loads(payload)
        except json.JSONDecodeError as error:
            raise JournalError(
                f"{path}: record at byte {start} is not JSON"
            ) from error
        record = JournalRecord.from_payload(decoded)
        if record.seq != len(records):
            raise JournalError(
                f"{path}: record at byte {start} has seq {record.seq}, "
                f"expected {len(records)} (journal is not contiguous)"
            )
        records.append(record)
    return _Scan(records=records, valid_bytes=offset, torn_bytes=end - offset)


def scan_journal(path: str | Path) -> list[JournalRecord]:
    """Read every intact record of a journal (read-only; tolerates a torn
    tail without modifying the file)."""
    path = Path(path)
    return _scan_blob(path.read_bytes(), path).records


class Journal:
    """An append-only ``COMWAL1`` event log.

    Create fresh with :meth:`create`, or re-open an existing file with
    :meth:`open` (which performs torn-tail truncation and returns the
    surviving records for replay).  ``crash`` wires a deterministic
    :class:`~repro.faults.CrashInjector` into the append path for the
    recovery drills — ``None`` (the default) appends unconditionally.
    """

    def __init__(
        self,
        path: Path,
        file: IO[bytes],
        next_seq: int,
        fsync: str,
        fsync_interval: int,
        crash: CrashInjector | None = None,
    ):
        self.path = path
        self._file = file
        self._next_seq = next_seq
        self._fsync = fsync
        self._fsync_interval = fsync_interval
        self._since_sync = 0
        #: Frames appended since the last commit; written in one OS call.
        self._buffer = bytearray()
        self._crash = crash
        self.torn_bytes_dropped = 0
        #: Optional concurrency-sanitizer guard over the append buffer
        #: (:class:`repro.analysis.concurrency.OwnershipGuard`); set by
        #: the gateway when the sanitizer is enabled, ``None`` costs one
        #: ``is None`` test per append.
        self.guard: "OwnershipGuard | None" = None
        #: The flush seam's background fsync worker (lazily created) and
        #: the first error it hit, surfaced on the next commit/close.
        self._sync_executor: ThreadPoolExecutor | None = None
        self._sync_error: OSError | None = None

    # -- construction --------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str | Path,
        fsync: str = "interval",
        fsync_interval: int = 256,
        crash: CrashInjector | None = None,
    ) -> "Journal":
        """Start a brand-new journal; refuses to clobber an existing one."""
        path = Path(path)
        if path.exists():
            raise JournalError(
                f"{path}: journal already exists — recover from it (or "
                f"remove it) instead of overwriting"
            )
        path.parent.mkdir(parents=True, exist_ok=True)
        file = path.open("wb")
        file.write(JOURNAL_MAGIC)
        file.flush()
        return cls(path, file, 0, fsync, fsync_interval, crash)

    @classmethod
    def open(
        cls,
        path: str | Path,
        fsync: str = "interval",
        fsync_interval: int = 256,
        crash: CrashInjector | None = None,
    ) -> tuple["Journal", list[JournalRecord]]:
        """Re-open after a crash: truncate any torn tail, return records.

        The returned journal appends after the last intact record; the
        returned list is everything that survived, for recovery replay.
        """
        path = Path(path)
        scan = _scan_blob(path.read_bytes(), path)
        file = path.open("r+b")
        if scan.torn_bytes:
            file.truncate(scan.valid_bytes)
        file.seek(scan.valid_bytes)
        journal = cls(path, file, len(scan.records), fsync, fsync_interval, crash)
        journal.torn_bytes_dropped = scan.torn_bytes
        return journal, scan.records

    # -- appending -----------------------------------------------------------

    @property
    def next_seq(self) -> int:
        """The sequence number the next append will carry."""
        return self._next_seq

    def append(self, kind: str, **fields: object) -> int:
        """Frame and buffer one record; returns its sequence number.

        The record is *not* durable until :meth:`commit` flushes the
        buffer.  Callers must commit before acknowledging anything the
        record covers — the gateway group-commits, so one flush (and one
        policy fsync) covers every record of a decision batch.
        """
        if self._file.closed:
            raise JournalError(f"{self.path}: journal is closed")
        payload = {"seq": self._next_seq, "kind": kind, **fields}
        encoded = json.dumps(payload, separators=(",", ":")).encode()
        return self._append_encoded(encoded)

    def append_worker_ref(self, ref: str) -> int:
        """Hot-path append of a worker ref record.

        Produces the same JSON :meth:`append` would (pinned by the
        round-trip tests) without the generic encoder — ref records are
        the bulk of a replayed trace's journal and sit on the
        acknowledgement critical path, where ``json.dumps`` and kwargs
        packing are ~5x the cost of an f-string.  An id that would need
        JSON escaping falls back to the generic path.
        """
        if not _plain(ref):
            return self.append("worker", ref=ref)
        if self._file.closed:
            raise JournalError(f"{self.path}: journal is closed")
        return self._append_encoded(
            f'{{"seq":{self._next_seq},"kind":"worker","ref":"{ref}"}}'.encode()
        )

    def append_request_ref(
        self,
        ref: str,
        status: str,
        worker_id: str | None,
        payment: float,
    ) -> int:
        """Hot-path append of a request ref record (see
        :meth:`append_worker_ref`)."""
        if (
            not _plain(ref)
            or not _plain(status)
            or not (worker_id is None or _plain(worker_id))
            or not isinstance(payment, float)
            or not math.isfinite(payment)
        ):
            return self.append(
                "request",
                ref=ref,
                outcome={
                    "status": status,
                    "worker_id": worker_id,
                    "payment": payment,
                },
            )
        if self._file.closed:
            raise JournalError(f"{self.path}: journal is closed")
        encoded_worker = "null" if worker_id is None else f'"{worker_id}"'
        return self._append_encoded(
            (
                f'{{"seq":{self._next_seq},"kind":"request","ref":"{ref}",'
                f'"outcome":{{"status":"{status}",'
                f'"worker_id":{encoded_worker},"payment":{payment!r}}}}}'
            ).encode()
        )

    def _append_encoded(self, encoded: bytes) -> int:
        if self.guard is not None:
            self.guard.check()
        frame = _FRAME.pack(len(encoded), zlib.crc32(encoded)) + encoded
        if self._crash is not None and self._crash.active:
            # Kill points, in pipeline order: die with the record unwritten,
            # or die mid-write leaving the torn tail recovery must absorb.
            self._crash.fire("journal_append")
            if self._crash.fires_next("journal_torn"):
                self._file.write(self._buffer)
                self._file.write(frame[: max(1, len(frame) // 2)])
                self._file.flush()
                self._buffer.clear()
            self._crash.fire("journal_torn")
        self._buffer += frame
        seq = self._next_seq
        self._next_seq += 1
        self._since_sync += 1
        return seq

    def commit(self) -> None:
        """Write buffered records to the OS in one call; fsync per policy.

        Once this returns, every appended record survives a process
        crash (and, under the ``always`` policy, an OS crash too).  The
        ``interval`` policy's periodic fdatasync runs on the flush
        seam's background worker — it only narrows the OS-crash loss
        window, which is advisory under that policy, so the decision
        loop never blocks on it (a millisecond-class stall per interval
        otherwise).  A failed background sync is re-raised here as
        :class:`~repro.errors.JournalError` before anything further is
        acknowledged.  No-op when nothing was appended since the last
        commit.
        """
        if self._sync_error is not None:
            self._raise_sync_error()
        if not self._buffer:
            return
        if self._file.closed:
            raise JournalError(f"{self.path}: journal is closed")
        self._file.write(self._buffer)
        self._file.flush()
        self._buffer.clear()
        if self._fsync == "always":
            # Synchronous by contract: the ack that follows this commit
            # promises OS-crash durability.
            self.sync()
        elif (
            self._fsync == "interval"
            and self._since_sync >= self._fsync_interval
        ):
            self._schedule_sync()

    def sync(self) -> None:
        """fdatasync the journal file (no-op when closed)."""
        if not self._file.closed:
            os.fdatasync(self._file.fileno())
        self._since_sync = 0

    def _schedule_sync(self) -> None:
        """Queue one fdatasync on the single background sync worker.

        The counter resets at scheduling time so the cadence stays a
        pure function of the record stream; the worker is one thread,
        so syncs apply in submission order and :meth:`close` joins them
        all with one ``shutdown(wait=True)``.
        """
        self._since_sync = 0
        if self._sync_executor is None:
            self._sync_executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="journal-sync"
            )
        self._sync_executor.submit(self._background_sync, self._file.fileno())

    def _background_sync(self, fileno: int) -> None:
        try:
            os.fdatasync(fileno)
        except OSError as error:
            # Worker thread: park the failure for the next commit/close
            # on the decision loop to re-raise (never swallowed).
            self._sync_error = error

    def _raise_sync_error(self) -> None:
        error = self._sync_error
        self._sync_error = None
        raise JournalError(
            f"{self.path}: background fdatasync failed"
        ) from error

    def close(self) -> None:
        """Flush and close; further appends raise :class:`JournalError`.

        Joins any in-flight background fsync first, so the descriptor
        is never closed under a running sync.
        """
        if self._sync_executor is not None:
            self._sync_executor.shutdown(wait=True)
            self._sync_executor = None
        if not self._file.closed:
            if self._buffer:
                self._file.write(self._buffer)
                self._buffer.clear()
            self._file.flush()
            self._file.close()
        if self._sync_error is not None:
            self._raise_sync_error()
