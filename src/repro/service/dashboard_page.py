"""The dashboard's single-file HTML page (no external assets).

Served verbatim at ``GET /`` by :class:`~repro.service.dashboard.
DashboardServer`.  Everything is inline — vanilla JS, canvas rendering,
``EventSource`` for the SSE stream, ``fetch`` for ``/state`` — so the
page works from a bare ``python -m repro.cli serve --dashboard`` with no
build step, CDN, or network access (the map is an abstract city-km
plane, not map tiles).

Three live surfaces, all driven by the ``COMEVT1`` stream:

* **map** — workers (rings) and requests (dots) positioned on the city
  plane, coloured by platform; recent matches drawn as connecting edges;
* **heatmap** — per-grid-cell request counts (the spatial-load view:
  hot downtown cells saturate first);
* **panels** — rolling decisions/sec and shed/sec folded from event
  arrival times, plus end-to-end latency quantiles polled from the
  ``/state`` histogram (wall-clock families are stripped from the
  exported snapshot, so latency is read from the dedicated panel's
  ``service_latency_seconds`` poll of ``/metrics``).
"""

from __future__ import annotations

__all__ = ["DASHBOARD_HTML"]

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>COM live ops</title>
<style>
  :root { color-scheme: dark; }
  body { margin: 0; font: 13px/1.4 system-ui, sans-serif;
         background: #0d1117; color: #c9d1d9; }
  header { display: flex; gap: 1.5em; align-items: baseline;
           padding: 8px 14px; background: #161b22;
           border-bottom: 1px solid #30363d; flex-wrap: wrap; }
  header h1 { font-size: 15px; margin: 0; color: #e6edf3; }
  .stat b { color: #e6edf3; font-variant-numeric: tabular-nums; }
  .ok { color: #3fb950; } .bad { color: #f85149; }
  main { display: grid; grid-template-columns: 2fr 1fr;
         gap: 10px; padding: 10px; }
  section { background: #161b22; border: 1px solid #30363d;
            border-radius: 6px; padding: 8px; }
  section h2 { font-size: 12px; margin: 0 0 6px;
               color: #8b949e; text-transform: uppercase; }
  canvas { width: 100%; display: block; }
  #log { height: 120px; overflow-y: auto; font: 11px/1.5 ui-monospace,
         monospace; white-space: pre; color: #8b949e; }
  #panels { display: grid; gap: 10px; }
</style>
</head>
<body>
<header>
  <h1>COM live ops</h1>
  <span class="stat">run <b id="h-run">–</b></span>
  <span class="stat">decided <b id="h-decided">0</b></span>
  <span class="stat">shed <b id="h-shed">0</b></span>
  <span class="stat">queue <b id="h-queue">0</b></span>
  <span class="stat">events/s <b id="h-eps">0</b></span>
  <span class="stat">event lag <b id="h-lag">0</b></span>
  <span class="stat" id="h-state">connecting…</span>
</header>
<main>
  <div id="panels">
    <section><h2>city map — workers ∘, requests ·, matches —</h2>
      <canvas id="map" width="860" height="560"></canvas></section>
    <section><h2>event feed</h2><div id="log"></div></section>
  </div>
  <div id="panels">
    <section><h2>grid-cell request load</h2>
      <canvas id="heat" width="420" height="280"></canvas></section>
    <section><h2>decisions / shed per second</h2>
      <canvas id="tput" width="420" height="120"></canvas></section>
    <section><h2>service latency (ms, p50 / p95)</h2>
      <canvas id="lat" width="420" height="120"></canvas></section>
  </div>
</main>
<script>
"use strict";
const world = { workers: new Map(), requests: new Map(), matches: [] };
const cells = new Map();
let cellKm = 1.0, bounds = { maxX: 8, maxY: 8 };
const tputBuckets = new Map(), shedBuckets = new Map();
const latSeries = [];
const palette = ["#58a6ff", "#f778ba", "#3fb950", "#d29922",
                 "#bc8cff", "#f85149", "#76e3ea", "#ffab70"];
const platformColor = new Map();
function colorOf(p) {
  if (!platformColor.has(p))
    platformColor.set(p, palette[platformColor.size % palette.length]);
  return platformColor.get(p);
}
function bucket(map) {
  const now = Math.floor(Date.now() / 1000);
  map.set(now, (map.get(now) || 0) + 1);
  for (const key of map.keys()) if (key < now - 60) map.delete(key);
}
function grow(x, y) {
  bounds.maxX = Math.max(bounds.maxX, x + 0.5);
  bounds.maxY = Math.max(bounds.maxY, y + 0.5);
}
let decided = 0, sheds = 0;
function fold(ev) {
  if (ev.kind === "worker") {
    const w = ev.worker;
    world.workers.set(w.id, { x: w.x, y: w.y, p: w.platform, s: "idle" });
    grow(w.x, w.y);
  } else if (ev.kind === "decision" || ev.kind === "resolution") {
    decided += 1; bucket(tputBuckets);
    let r;
    if (typeof ev.request === "object") {
      // A decision carries the arrival's wire entity inline.
      const q = ev.request;
      r = { x: q.x, y: q.y, p: q.platform, s: ev.status };
      world.requests.set(q.id, r);
      grow(q.x, q.y);
      const key = Math.floor(q.x / cellKm) + "," + Math.floor(q.y / cellKm);
      cells.set(key, (cells.get(key) || 0) + 1);
    } else {
      r = world.requests.get(ev.request);
      if (r) r.s = ev.status;
    }
    if (ev.worker) {
      const w = world.workers.get(ev.worker);
      if (w) w.s = "matched";
      if (r && w) {
        world.matches.push({ a: r, b: w });
        if (world.matches.length > 150) world.matches.shift();
      }
    }
  } else if (ev.kind === "shed") {
    sheds += 1; bucket(shedBuckets);
    const r = ev.request;
    world.requests.set(r.id, { x: r.x, y: r.y, p: r.platform, s: "shed" });
  } else if (ev.kind === "crash") {
    logLine("!! crash: " + ev.error);
  } else if (ev.kind === "recovered") {
    logLine("!! recovered at checkpoint seq " + ev.checkpoint_seq);
  } else if (ev.kind === "meta") {
    document.getElementById("h-run").textContent =
      ev.algorithm + " / " + ev.scenario;
  }
}
const logEl = document.getElementById("log");
let logCount = 0;
function logLine(text) {
  logCount += 1;
  if (logCount % 120 === 0) logEl.textContent = "";
  logEl.textContent += text + "\\n";
  logEl.scrollTop = logEl.scrollHeight;
}
function drawMap() {
  const canvas = document.getElementById("map");
  const g = canvas.getContext("2d");
  const sx = canvas.width / bounds.maxX, sy = canvas.height / bounds.maxY;
  g.clearRect(0, 0, canvas.width, canvas.height);
  g.lineWidth = 1; g.strokeStyle = "rgba(139,148,158,0.35)";
  for (const m of world.matches) {
    g.beginPath();
    g.moveTo(m.a.x * sx, canvas.height - m.a.y * sy);
    g.lineTo(m.b.x * sx, canvas.height - m.b.y * sy);
    g.stroke();
  }
  for (const w of world.workers.values()) {
    g.beginPath();
    g.strokeStyle = colorOf(w.p);
    g.globalAlpha = w.s === "matched" ? 0.35 : 1.0;
    g.arc(w.x * sx, canvas.height - w.y * sy, 4, 0, 7);
    g.stroke();
  }
  for (const r of world.requests.values()) {
    g.beginPath();
    g.fillStyle = r.s === "shed" ? "#f85149"
      : r.s === "reject" ? "#8b949e" : colorOf(r.p);
    g.globalAlpha = r.s === "pending" ? 1.0 : 0.55;
    g.arc(r.x * sx, canvas.height - r.y * sy, 2.2, 0, 7);
    g.fill();
  }
  g.globalAlpha = 1.0;
}
function drawHeat() {
  const canvas = document.getElementById("heat");
  const g = canvas.getContext("2d");
  g.clearRect(0, 0, canvas.width, canvas.height);
  const nx = Math.ceil(bounds.maxX / cellKm), ny = Math.ceil(bounds.maxY / cellKm);
  const cw = canvas.width / nx, ch = canvas.height / ny;
  let peak = 1;
  for (const v of cells.values()) peak = Math.max(peak, v);
  for (const [key, v] of cells) {
    const [i, j] = key.split(",").map(Number);
    const heat = v / peak;
    g.fillStyle = "rgba(" + Math.round(40 + 215 * heat) + ","
      + Math.round(90 * (1 - heat) + 40) + ",60," + (0.25 + 0.75 * heat) + ")";
    g.fillRect(i * cw, canvas.height - (j + 1) * ch, cw - 1, ch - 1);
  }
}
function drawSeries(id, series, color, label) {
  const canvas = document.getElementById(id);
  const g = canvas.getContext("2d");
  g.clearRect(0, 0, canvas.width, canvas.height);
  const peak = Math.max(1, ...series.map(s => s.v));
  const bw = canvas.width / Math.max(series.length, 60);
  series.forEach((s, i) => {
    g.fillStyle = s.c || color;
    const h = (s.v / peak) * (canvas.height - 14);
    g.fillRect(i * bw, canvas.height - h, bw - 1, h);
  });
  g.fillStyle = "#8b949e";
  g.fillText(label + "  peak " + peak.toFixed(1), 4, 10);
}
function rollup(map) {
  const now = Math.floor(Date.now() / 1000), out = [];
  for (let t = now - 59; t <= now; t++) out.push({ v: map.get(t) || 0 });
  return out;
}
function render() {
  drawMap(); drawHeat();
  const tput = rollup(tputBuckets);
  const shed = rollup(shedBuckets).map(s => ({ v: s.v, c: "#f85149" }));
  drawSeries("tput", tput.map((s, i) =>
    shed[i].v > s.v ? shed[i] : s), "#3fb950", "decisions/s");
  drawSeries("lat", latSeries.slice(-60), "#d29922", "p95 ms");
  document.getElementById("h-decided").textContent = decided;
  document.getElementById("h-shed").textContent = sheds;
}
setInterval(render, 1000);

function quantile(hist, q) {
  // hist: [{bounds: [...], counts: [...], count: n}] pooled over series.
  let total = 0;
  for (const s of hist) total += s.count;
  if (!total) return 0;
  const target = q * total;
  const bounds = hist[0].bounds;
  const pooled = new Array(bounds.length + 1).fill(0);
  for (const s of hist) s.counts.forEach((c, i) => pooled[i] += c);
  let seen = 0;
  for (let i = 0; i < pooled.length; i++) {
    seen += pooled[i];
    if (seen >= target) return i < bounds.length ? bounds[i] : bounds[bounds.length - 1];
  }
  return bounds[bounds.length - 1];
}
async function pollState() {
  try {
    const res = await fetch("/state");
    const body = await res.json();
    const stats = body.stats;
    document.getElementById("h-queue").textContent = stats.pending;
    if (stats.events) {
      document.getElementById("h-eps").textContent =
        stats.events.events_per_second.toFixed(1);
      document.getElementById("h-lag").textContent = stats.events.lag;
    }
    // Wall-clock families are stripped from /state; poll /metrics for
    // the latency histogram (operator view, not a replay artifact).
    const metrics = await (await fetch("/metrics")).json();
    const hist = (metrics.histograms || {})["service_latency_seconds"];
    if (hist && hist.length) {
      latSeries.push({ v: quantile(hist, 0.95) * 1000 });
      if (latSeries.length > 120) latSeries.shift();
    }
  } catch (err) { /* server draining; keep the last view */ }
}
setInterval(pollState, 2000); pollState();

const source = new EventSource("/events");
const stateEl = document.getElementById("h-state");
source.onopen = () => { stateEl.textContent = "live"; stateEl.className = "ok"; };
source.onerror = () => { stateEl.textContent = "disconnected"; stateEl.className = "bad"; };
source.onmessage = (message) => {
  const ev = JSON.parse(message.data);
  fold(ev);
  if (ev.kind === "decision" || ev.kind === "shed")
    logLine("t=" + ev.time.toFixed(1) + " " + ev.kind + " " +
            (ev.request.id || ev.request) + " -> " + (ev.status || "") +
            (ev.worker ? " @" + ev.worker : ""));
};
</script>
</body>
</html>
"""
