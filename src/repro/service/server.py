"""JSONL-over-TCP transport for the matching gateway.

The wire protocol is deliberately primitive — one JSON object per line in
each direction, stdlib-only on both ends, trivially driven from ``nc`` or
any language:

Request lines carry a ``verb`` plus verb-specific fields; every response
line carries ``"ok"`` (boolean), the echoed ``verb``, and either the
result fields or an ``"error"`` string.  Verbs (see docs/SERVICE.md for
the full schema):

``ping``
    Liveness check; echoes the server's clock reading.
``request``
    Submit one request ``{"verb": "request", "request": {"id", "platform",
    "x", "y", "value"[, "t"]}}``; omitted ``t`` is stamped with the
    gateway clock (live mode).  Answers the request's
    :class:`~repro.service.gateway.ServiceOutcome`.
``worker``
    Submit one worker arrival (same shape, with ``radius`` and optional
    ``shareable`` / ``departure``).
``shed``
    Re-apply a recorded shed decision (replay path; bypasses admission —
    used by ``com-repro replay-events --tcp``).
``outcome``
    Query a previously submitted request's outcome (deferred requests
    resolve asynchronously on batch flushes).
``stats``
    The gateway's live statistics: queue depth, shed counters, decision
    counts, latency histogram (see docs/OBSERVABILITY.md).
``snapshot``
    Checkpoint matching state to a server-side path.
``drain``
    End of stream: flush, finalize, and answer the run's full metric row
    — the dict that is byte-identical to the batch simulator's under the
    virtual clock.

Entity ids must be unique per run (the engine enforces global uniqueness
of worker ids; requests are keyed by id in the outcome log).  Submissions
are answered in order per connection; concurrent connections interleave
at whole-decision granularity through the gateway's serialized queue.
"""

from __future__ import annotations

import asyncio
import json

from repro.errors import InducedCrash, ReproError, ServiceError
from repro.service.gateway import MatchingGateway

# Entity codecs live in repro.service.wire (shared with the journal);
# re-exported here for backward compatibility.
from repro.service.wire import (
    request_from_wire,
    request_to_wire,
    worker_from_wire,
    worker_to_wire,
)

__all__ = [
    "MatchingServer",
    "DEFAULT_HOST",
    "encode_response",
    "request_to_wire",
    "request_from_wire",
    "worker_to_wire",
    "worker_from_wire",
]

DEFAULT_HOST = "127.0.0.1"


def encode_response(response: dict) -> bytes:
    """Frame one JSONL protocol response (shared with the cluster front
    door, which must not serialize next to event-sink code itself)."""
    return json.dumps(response, sort_keys=True).encode() + b"\n"


# -- the server --------------------------------------------------------------


class MatchingServer:
    """Serves a :class:`MatchingGateway` over JSONL/TCP."""

    def __init__(
        self,
        gateway: MatchingGateway,
        host: str = DEFAULT_HOST,
        port: int = 0,
    ):
        self.gateway = gateway
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        # Fail-stop plumbing: when the gateway dies (induced kill point or
        # real engine failure), drop every connection and the listener so
        # clients observe exactly what a killed process looks like — EOF
        # mid-call, connection refused afterwards.
        gateway.on_crash = self._on_gateway_crash

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port); valid after :meth:`start`."""
        if self._server is None:
            raise ServiceError("server not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> tuple[str, int]:
        """Start the gateway and the listener; returns the bound address.

        ``port=0`` (the default) binds an ephemeral port — read it back
        from the return value.
        """
        await self.gateway.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        return self.address

    async def stop(self) -> None:
        """Close the listener and stop the gateway loop."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.gateway.stop()

    def _on_gateway_crash(self, error: BaseException) -> None:
        """Tear the transport down like the process died (sync, in-loop)."""
        if self._server is not None:
            self._server.close()
            self._server = None
        for writer in list(self._connections):
            writer.transport.abort()
        self._connections.clear()

    async def serve_forever(self) -> None:
        """Block serving connections until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = await self._answer(line)
                writer.write(encode_response(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-write; nothing to answer
        except InducedCrash:
            # The kill point fired inside this call: die without answering
            # (the crash teardown already aborted the transport).
            pass
        finally:
            self._connections.discard(writer)
            writer.close()

    async def _answer(self, line: bytes) -> dict:
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            return {"ok": False, "verb": None, "error": f"bad JSON: {error}"}
        if not isinstance(payload, dict):
            return {"ok": False, "verb": None, "error": "payload must be an object"}
        verb = payload.get("verb")
        try:
            return await self._dispatch(verb, payload)
        except InducedCrash:
            # Never downgrade a kill point to an error *response* — a dead
            # process cannot answer.  Propagates to the connection handler.
            raise
        except (ReproError, ValueError, TypeError) as error:
            return {"ok": False, "verb": verb, "error": str(error)}

    async def _dispatch(self, verb: object, payload: dict) -> dict:
        gateway = self.gateway
        if verb == "ping":
            return {
                "ok": True,
                "verb": "ping",
                "clock": gateway.clock.now(),
                "virtual": gateway.clock.virtual,
            }
        if verb == "request":
            request = request_from_wire(
                payload.get("request") or {}, gateway.clock.now()
            )
            if gateway.clock.virtual:
                gateway.clock.advance_to(request.arrival_time)  # type: ignore[attr-defined]
            outcome = await gateway.submit_request(request)
            return {"ok": True, "verb": "request", "outcome": outcome.as_dict()}
        if verb == "worker":
            worker = worker_from_wire(
                payload.get("worker") or {}, gateway.clock.now()
            )
            if gateway.clock.virtual:
                gateway.clock.advance_to(worker.arrival_time)  # type: ignore[attr-defined]
            await gateway.submit_worker(worker)
            return {"ok": True, "verb": "worker", "worker_id": worker.worker_id}
        if verb == "shed":
            # Replay path only: re-apply a recorded shed decision from a
            # COMEVT1 stream without consulting this process's admission
            # state (repro.service.replay drives this for --tcp verifies).
            request = request_from_wire(
                payload.get("request") or {}, gateway.clock.now()
            )
            if gateway.clock.virtual:
                gateway.clock.advance_to(request.arrival_time)  # type: ignore[attr-defined]
            outcome = await gateway.replay_shed(request)
            return {"ok": True, "verb": "shed", "outcome": outcome.as_dict()}
        if verb == "outcome":
            request_id = str(payload.get("request_id", ""))
            outcome = gateway.outcome_of(request_id)
            return {
                "ok": True,
                "verb": "outcome",
                "request_id": request_id,
                "outcome": outcome.as_dict() if outcome is not None else None,
            }
        if verb == "stats":
            return {"ok": True, "verb": "stats", "stats": gateway.stats()}
        if verb == "snapshot":
            path = payload.get("path")
            if not path:
                raise ServiceError("snapshot verb needs a 'path' field")
            saved = await gateway.snapshot(str(path))
            return {"ok": True, "verb": "snapshot", "path": str(saved)}
        if verb == "drain":
            await gateway.drain()
            return {
                "ok": True,
                "verb": "drain",
                "metrics": gateway.metrics_dict(),
            }
        return {"ok": False, "verb": verb, "error": f"unknown verb {verb!r}"}
