"""Pluggable time sources for the serving layer.

The paper's setting is *real-time* online matching, but the reproduction's
correctness anchor is bit-for-bit determinism: a recorded trace driven
through the full service stack must produce the same
:class:`~repro.core.simulator.SimulationResult` as the batch
:meth:`~repro.core.simulator.Simulator.run` replay.  The gateway therefore
never reads the wall clock directly — it asks a :class:`ServiceClock`:

* :class:`VirtualClock` — deterministic simulation time.  ``now()`` is the
  timestamp of the last processed arrival and ``sleep_until`` returns
  immediately; a trace replayed under it is indistinguishable from the
  batch engine (the golden-equivalence tests in ``tests/test_service.py``
  pin this).
* :class:`RealTimeClock` — the live mode.  Time is seconds since the clock
  started (monotonic, so entity timestamps stay non-negative), optionally
  compressed by a ``speed`` factor for accelerated replays, and
  ``sleep_until`` suspends the coroutine until the target instant.

This module (like :mod:`repro.utils.timer`) is a sanctioned home for
wall-clock reads — everywhere else in the package the comlint ``DET002``
rule rejects them.
"""

from __future__ import annotations

import asyncio
import time

__all__ = ["ServiceClock", "VirtualClock", "RealTimeClock"]


class ServiceClock:
    """The time source interface consumed by the gateway and client."""

    #: True when ``now()`` is simulation time (deterministic replays).
    virtual: bool = True

    def now(self) -> float:
        """The current service time, in seconds."""
        raise NotImplementedError

    async def sleep_until(self, when: float) -> None:
        """Suspend until service time reaches ``when``."""
        raise NotImplementedError


class VirtualClock(ServiceClock):
    """Deterministic simulation time, advanced by the events themselves.

    ``sleep_until`` never yields to the wall clock: it advances the
    virtual instant and returns, so a replay runs as fast as the CPU
    allows while every timestamp-dependent code path sees exactly the
    recorded trace times.
    """

    virtual = True

    def __init__(self, start: float = 0.0) -> None:
        self._now = start

    def now(self) -> float:
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the virtual instant forward (never backwards)."""
        if when > self._now:
            self._now = when

    async def sleep_until(self, when: float) -> None:
        self.advance_to(when)


class RealTimeClock(ServiceClock):
    """Wall-clock service time: seconds since the clock was created.

    ``speed`` compresses time for accelerated trace replays: with
    ``speed=60`` one recorded minute elapses per wall-clock second.  The
    monotonic epoch makes ``now()`` non-negative and immune to system
    clock adjustments, so it is directly usable as an entity
    ``arrival_time``.
    """

    virtual = False

    def __init__(self, speed: float = 1.0) -> None:
        if speed <= 0:
            raise ValueError(f"clock speed must be positive, got {speed}")
        self.speed = speed
        self._epoch = time.monotonic()

    def now(self) -> float:
        return (time.monotonic() - self._epoch) * self.speed

    async def sleep_until(self, when: float) -> None:
        delay = (when - self.now()) / self.speed
        if delay > 0:
            await asyncio.sleep(delay)
