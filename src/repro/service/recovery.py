"""Crash recovery: checkpoint + journal suffix → the pre-crash gateway.

:func:`recover_gateway` is the restart path of a journaled deployment.
It needs nothing but the journal directory — the initial checkpoint
written at journal bootstrap guarantees a ``COMSNAP1`` anchor always
exists — and proceeds in four steps:

1. load the latest checkpoint (atomic rotation means it is always a
   complete, CRC-verified snapshot; a crash mid-rotation leaves the
   previous one);
2. open the journal, truncating any torn tail left by a crash
   mid-append;
3. replay the journal suffix (records with ``seq >=`` the checkpoint's
   ``journal_seq``) through the deterministic engine — worker and
   request arrivals re-enter :class:`~repro.core.simulator.
   SimulationSession` exactly as the decision loop applied them, shed
   records restore their outcome-log entries without touching the
   engine, and every replayed decision is **verified against the
   journaled outcome** (any divergence raises :class:`~repro.errors.
   JournalError`: the journal no longer describes this engine, and
   serving from it would silently corrupt results);
4. hand the journal back to a fresh :class:`~repro.service.gateway.
   MatchingGateway` with the dedup state (journaled request/worker ids)
   rebuilt from the *full* record set, so client retries of
   pre-checkpoint operations are still absorbed.

The recovered gateway is byte-identical to the crashed one: continuing
the same trace and draining yields the same metrics row as an
uninterrupted run — pinned by ``tests/test_service_journal.py`` at every
kill-point boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.entities import Request, Worker
from repro.errors import JournalError, ServiceError
from repro.faults.crash import CrashPlan
from repro.obs.events import EventLog
from repro.service.admission import AdmissionPolicy
from repro.service.clock import ServiceClock
from repro.service.gateway import (
    STATUS_SHED,
    MatchingGateway,
    ServiceOutcome,
    _outcome_from_decision,
)
from repro.service.journal import Journal, JournalConfig, JournalRecord
from repro.service.snapshot import read_snapshot
from repro.service.wire import request_from_wire, worker_from_wire
from repro.utils.timer import Stopwatch

__all__ = ["RecoveryReport", "recover_gateway"]


@dataclass(frozen=True, slots=True)
class RecoveryReport:
    """What recovery did, for operators and the soak harness."""

    #: Journal seq the checkpoint covered up to (replay started here).
    checkpoint_seq: int
    #: Total intact records in the journal at open.
    journal_records: int
    #: Suffix records replayed through the engine / outcome log.
    records_replayed: int
    #: Bytes of torn tail truncated from the journal (0 = clean tail).
    torn_bytes_dropped: int
    #: Wall-clock seconds from checkpoint load to ready gateway.
    recovery_seconds: float

    def as_dict(self) -> dict:
        return {
            "checkpoint_seq": self.checkpoint_seq,
            "journal_records": self.journal_records,
            "records_replayed": self.records_replayed,
            "torn_bytes_dropped": self.torn_bytes_dropped,
            "recovery_seconds": self.recovery_seconds,
        }


def _replay_record(
    gateway: MatchingGateway,
    record: JournalRecord,
    workers_by_id: dict[str, Worker],
    requests_by_id: dict[str, Request],
) -> None:
    """Apply one suffix record to a bare (journal-less) gateway.

    Worker/request records carry either the full wire entity or a bare
    ``ref`` — the id of the scenario's canonical entity (the fast path
    for replayed traces; the scenario itself travels in the checkpoint).
    """
    session = gateway._session
    if record.kind == "worker":
        ref = record.fields.get("ref")
        if ref is not None:
            try:
                worker = workers_by_id[str(ref)]
            except KeyError:
                raise JournalError(
                    f"journal seq {record.seq} references worker "
                    f"{ref!r}, which is not in the scenario"
                ) from None
        else:
            worker = gateway._canonical_worker(
                worker_from_wire(record.fields["worker"])
            )
        session.submit_worker(worker)
        return
    if record.kind == "request":
        ref = record.fields.get("ref")
        if ref is not None:
            try:
                request = requests_by_id[str(ref)]
            except KeyError:
                raise JournalError(
                    f"journal seq {record.seq} references request "
                    f"{ref!r}, which is not in the scenario"
                ) from None
        else:
            request = gateway._canonical_request(
                request_from_wire(record.fields["request"])
            )
        brief = record.fields["outcome"]
        journaled = ServiceOutcome(
            request_id=request.request_id,
            status=str(brief["status"]),
            worker_id=brief.get("worker_id"),
            payment=brief.get("payment", 0.0),
        )
        decision = session.submit_request(request)
        outcome = _outcome_from_decision(request, decision)
        if not outcome.matches(journaled):
            raise JournalError(
                f"replay diverged at journal seq {record.seq}: request "
                f"{request.request_id!r} decided {outcome.as_dict()!r} "
                f"but the journal recorded {journaled.as_dict()!r} — the "
                f"journal does not describe this engine state"
            )
        gateway._outcomes[request.request_id] = outcome
        return
    if record.kind == "shed":
        # Shed requests never entered the engine; only the answer the
        # client saw is restored.  Skip if a later record decided the
        # request for real (a retry after the shed) — replay applies
        # records in order, so the decided outcome lands afterwards.
        outcome = ServiceOutcome.from_dict(record.fields["outcome"])
        gateway._outcomes[outcome.request_id] = outcome
        return
    if record.kind in ("meta", "checkpoint", "resolution"):
        # meta/checkpoint are bookkeeping; resolutions regenerate through
        # the session's on_resolution hook while arrivals replay.
        return
    raise JournalError(
        f"journal seq {record.seq} has unknown kind {record.kind!r}"
    )


def recover_gateway(
    directory: str | Path,
    fsync: str = "interval",
    fsync_interval: int = 256,
    checkpoint_every: int = 4096,
    clock: ServiceClock | None = None,
    admission: AdmissionPolicy | None = None,
    crash_plan: CrashPlan | None = None,
    events: str | Path | None = None,
) -> tuple[MatchingGateway, RecoveryReport]:
    """Rebuild the gateway a crashed process left in ``directory``.

    Returns the recovered (not yet started) gateway and a
    :class:`RecoveryReport`.  ``crash_plan`` arms kill points in the
    *recovered* process — the soak harness uses this to chain
    crash→recover cycles; the injector starts from boundary zero, like a
    freshly restarted binary.  ``events`` resumes the crashed process's
    ``COMEVT1`` stream (:meth:`~repro.obs.events.EventLog.resume`): the
    torn tail is truncated, an ops ``recovered`` marker is appended, and
    the recovered gateway continues the stream — the journal-suffix
    replay itself emits nothing (those events are already in the file).
    Raises :class:`~repro.errors.JournalError` when the journal is
    corrupt mid-file or diverges from the engine, and
    :class:`~repro.errors.ServiceError` when the checkpoint is damaged.
    """
    config = JournalConfig(
        directory=directory,
        fsync=fsync,
        fsync_interval=fsync_interval,
        checkpoint_every=checkpoint_every,
    )
    watch = Stopwatch().start()
    if not config.checkpoint_path.exists():
        # Bootstrap writes journal-then-checkpoint; a crash between the
        # two strands a journal with no anchor.  Nothing was ever
        # acknowledged from such a process, so discarding is lossless.
        raise ServiceError(
            f"{config.checkpoint_path}: no checkpoint — the process died "
            f"during bootstrap before any operation was acknowledged; "
            f"remove the journal directory and start fresh"
        )
    session, outcomes, meta = read_snapshot(config.checkpoint_path)
    checkpoint_seq = int(meta.get("journal_seq", 0))
    gateway = MatchingGateway(
        session=session, clock=clock, admission=admission, crash_plan=crash_plan
    )
    gateway._outcomes = {
        request_id: ServiceOutcome.from_dict(payload)
        for request_id, payload in outcomes.items()
    }
    journal, records = Journal.open(
        config.journal_path,
        fsync=config.fsync,
        fsync_interval=config.fsync_interval,
        crash=gateway._crash if gateway._crash.active else None,
    )
    workers_by_id = {
        worker.worker_id: worker for worker in gateway.scenario.events.workers
    }
    requests_by_id = {
        request.request_id: request
        for request in gateway.scenario.events.requests
    }
    replayed = 0
    try:
        if records and checkpoint_seq > records[-1].seq + 1:
            raise JournalError(
                f"{config.journal_path}: checkpoint covers journal seq "
                f"{checkpoint_seq} but the journal ends at seq "
                f"{records[-1].seq} — journal and checkpoint are from "
                f"different histories"
            )
        for record in records[checkpoint_seq:]:
            _replay_record(gateway, record, workers_by_id, requests_by_id)
            replayed += 1
    except BaseException:
        journal.close()
        raise
    journaled_workers = {
        str(
            record.fields["ref"]
            if "ref" in record.fields
            else record.fields["worker"]["id"]
        )
        for record in records
        if record.kind == "worker"
    }
    gateway._attach_journal(
        config, journal, journaled_workers, last_checkpoint_seq=checkpoint_seq
    )
    if events is not None:
        # Attach only after the suffix replay: those operations' events
        # are already in the file (emission follows the append that made
        # them durable), so the replay must not re-emit them.  A path
        # with no file yet (the crashed process never had an event log)
        # starts a fresh stream instead.
        events_path = Path(events)
        if events_path.exists():
            gateway.attach_events(
                EventLog.resume(events_path, registry=gateway.registry),
                recovered=True,
            )
        else:
            gateway.attach_events(
                EventLog(events_path, registry=gateway.registry)
            )
    report = RecoveryReport(
        checkpoint_seq=checkpoint_seq,
        journal_records=len(records),
        records_replayed=replayed,
        torn_bytes_dropped=journal.torn_bytes_dropped,
        recovery_seconds=watch.stop(),
    )
    return gateway, report
