"""Asyncio client for the JSONL matching service, plus a trace driver.

:class:`GatewayClient` speaks the one-JSON-object-per-line protocol of
:class:`~repro.service.server.MatchingServer`.  Calls are serialized with
a lock (the protocol answers in submission order per connection), so one
client instance is safe to share between tasks.

Pass a :class:`~repro.faults.RetryPolicy` as ``reconnect`` and the
client survives a server crash/restart transparently: a dropped
connection, refused reconnect, or stalled call (``call_timeout_s`` per
attempt) triggers exponential, seeded-jitter backoff and a fresh
connection, and the call is re-sent.  Re-sending is safe against a
*journaled* gateway — request/worker submissions are idempotent there
(duplicate ids are answered from the durable outcome log, never
re-applied); against an unjournaled gateway the retry of a ``request``
or ``worker`` verb may double-apply, so only enable ``reconnect`` for
deployments running with a write-ahead journal.  Backoff jitter comes
from a :func:`~repro.utils.rng.derive_rng` stream, keeping retry
schedules a pure function of ``(reconnect_seed, attempt)``.

:func:`drive_trace` streams any :class:`~repro.core.events.EventStream`
— synthetic scenarios from :mod:`repro.workloads` or traces loaded with
:func:`repro.workloads.load_scenario` — into a server in event order and
returns the drained metrics dict.  Under a virtual clock the server
advances simulation time from the events' own timestamps; pass a
real-time clock to pace the replay against the wall.
"""

from __future__ import annotations

import asyncio
import json

from repro.core.entities import Request, Worker
from repro.core.events import EventKind, EventStream
from repro.errors import ServiceError
from repro.faults.plan import RetryPolicy
from repro.service.clock import ServiceClock
from repro.service.gateway import ServiceOutcome
from repro.service.wire import request_to_wire, worker_to_wire
from repro.utils.rng import derive_rng

__all__ = ["GatewayClient", "drive_trace"]


class GatewayClient:
    """One TCP connection to a :class:`MatchingServer`.

    With ``reconnect=None`` (the default) a transport failure surfaces
    as a :class:`ServiceError` immediately — the pre-journal behaviour.
    With a :class:`RetryPolicy` the client reconnects and retries per
    the policy before giving up.
    """

    def __init__(
        self,
        host: str,
        port: int,
        reconnect: RetryPolicy | None = None,
        reconnect_seed: int = 0,
    ):
        self.host = host
        self.port = port
        self.reconnect = reconnect
        self._rng = derive_rng(reconnect_seed, "service.client.reconnect")
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._lock = asyncio.Lock()
        #: Successful reconnections performed (observability for drills).
        self.reconnects = 0

    async def connect(self) -> "GatewayClient":
        """Open the connection (idempotent); returns ``self``."""
        if self._writer is None:
            await self._open()
        return self

    async def _open(self) -> None:
        connector = asyncio.open_connection(self.host, self.port)
        if self.reconnect is not None:
            self._reader, self._writer = await asyncio.wait_for(
                connector, self.reconnect.call_timeout_s
            )
        else:
            self._reader, self._writer = await connector

    def _drop(self) -> None:
        """Forget a (possibly poisoned) connection without waiting."""
        if self._writer is not None:
            self._writer.close()
        self._reader = None
        self._writer = None

    async def close(self) -> None:
        """Close the connection."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass  # server already tore the socket down
            self._reader = None
            self._writer = None

    async def __aenter__(self) -> "GatewayClient":
        return await self.connect()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    async def _roundtrip(self, data: bytes, verb: str) -> dict:
        """One send + one response line on the current connection."""
        if self._writer is None or self._reader is None:
            raise ServiceError("client not connected; call connect() first")
        self._writer.write(data)
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionResetError(
                f"server closed the connection during {verb!r}"
            )
        return json.loads(line)

    async def _call_with_reconnect(self, data: bytes, verb: str) -> dict:
        policy = self.reconnect
        assert policy is not None
        last_error: Exception | None = None
        for attempt in range(policy.max_attempts):
            if attempt:
                # Jittered exponential backoff from a derived stream: the
                # schedule is reproducible, the thundering herd is not.
                await asyncio.sleep(policy.backoff_for(attempt - 1, self._rng))
            try:
                if self._writer is None:
                    await self._open()
                    if attempt:
                        self.reconnects += 1
                return await asyncio.wait_for(
                    self._roundtrip(data, verb), policy.call_timeout_s
                )
            except (OSError, asyncio.TimeoutError) as error:
                # Connection refused / reset / EOF / stalled call: the
                # connection is unusable (a late response would desync
                # the request/response pairing) — drop it and retry.
                last_error = error
                self._drop()
        raise ServiceError(
            f"{verb!r} failed after {policy.max_attempts} attempts "
            f"(reconnect exhausted)"
        ) from last_error

    async def call(self, verb: str, **fields: object) -> dict:
        """Send one ``{"verb": ...}`` line and await its response line.

        Raises :class:`ServiceError` when the server answers
        ``"ok": false``, or when the transport fails (after exhausting
        the ``reconnect`` policy, if one is configured).
        """
        payload = {"verb": verb, **fields}
        data = json.dumps(payload, sort_keys=True).encode() + b"\n"
        async with self._lock:
            if self.reconnect is not None:
                response = await self._call_with_reconnect(data, verb)
            else:
                try:
                    response = await self._roundtrip(data, verb)
                except ConnectionResetError as error:
                    raise ServiceError(str(error)) from error
        if not response.get("ok"):
            raise ServiceError(
                f"{verb} failed: {response.get('error', 'unknown error')}"
            )
        return response

    # -- convenience verbs --------------------------------------------------

    async def ping(self) -> dict:
        """Liveness check; returns the server's clock reading."""
        return await self.call("ping")

    async def submit_request(self, request: Request) -> ServiceOutcome:
        """Submit one request; returns its (possibly deferred) outcome."""
        response = await self.call("request", request=request_to_wire(request))
        return ServiceOutcome.from_dict(response["outcome"])

    async def submit_worker(self, worker: Worker) -> None:
        """Announce one worker arrival."""
        await self.call("worker", worker=worker_to_wire(worker))

    async def replay_shed(self, request: Request) -> ServiceOutcome:
        """Re-apply a recorded shed decision (the event-replay path)."""
        response = await self.call("shed", request=request_to_wire(request))
        return ServiceOutcome.from_dict(response["outcome"])

    async def outcome_of(self, request_id: str) -> ServiceOutcome | None:
        """Look up a request's latest recorded outcome (None if unknown)."""
        response = await self.call("outcome", request_id=request_id)
        outcome = response.get("outcome")
        return ServiceOutcome.from_dict(outcome) if outcome else None

    async def stats(self) -> dict:
        """The gateway's live statistics."""
        response = await self.call("stats")
        return response["stats"]

    async def snapshot(self, path: str) -> str:
        """Checkpoint the server's matching state to a server-side path."""
        response = await self.call("snapshot", path=path)
        return response["path"]

    async def drain(self) -> dict:
        """Finalize the run; returns the full metrics dict."""
        response = await self.call("drain")
        return response["metrics"]


async def drive_trace(
    client: GatewayClient,
    events: EventStream,
    clock: ServiceClock | None = None,
    stop_after: float | None = None,
) -> dict:
    """Stream ``events`` into a server in order, drain, return metrics.

    ``clock`` paces the submission: with a real-time clock each event
    waits until its timestamp (scaled by the clock's speed); with the
    default ``None`` events are pushed back-to-back and the *server's*
    virtual clock advances from the event timestamps.  ``stop_after``
    truncates the stream at a simulation time (used by snapshot/restore
    drills); truncation skips the drain and returns the live stats dict
    instead.
    """
    for event in events:
        if stop_after is not None and event.time > stop_after:
            return await client.stats()
        if clock is not None and not clock.virtual:
            await clock.sleep_until(event.time)
        if event.kind is EventKind.WORKER:
            assert event.worker is not None
            await client.submit_worker(event.worker)
        else:
            assert event.request is not None
            await client.submit_request(event.request)
    return await client.drain()
