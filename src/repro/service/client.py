"""Asyncio client for the JSONL matching service, plus a trace driver.

:class:`GatewayClient` speaks the one-JSON-object-per-line protocol of
:class:`~repro.service.server.MatchingServer`.  Calls are serialized with
a lock (the protocol answers in submission order per connection), so one
client instance is safe to share between tasks.

:func:`drive_trace` streams any :class:`~repro.core.events.EventStream`
— synthetic scenarios from :mod:`repro.workloads` or traces loaded with
:func:`repro.workloads.load_scenario` — into a server in event order and
returns the drained metrics dict.  Under a virtual clock the server
advances simulation time from the events' own timestamps; pass a
real-time clock to pace the replay against the wall.
"""

from __future__ import annotations

import asyncio
import json

from repro.core.entities import Request, Worker
from repro.core.events import EventKind, EventStream
from repro.errors import ServiceError
from repro.service.clock import ServiceClock
from repro.service.gateway import ServiceOutcome
from repro.service.server import request_to_wire, worker_to_wire

__all__ = ["GatewayClient", "drive_trace"]


class GatewayClient:
    """One TCP connection to a :class:`MatchingServer`."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._lock = asyncio.Lock()

    async def connect(self) -> "GatewayClient":
        """Open the connection (idempotent); returns ``self``."""
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        return self

    async def close(self) -> None:
        """Close the connection."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass  # server already tore the socket down
            self._reader = None
            self._writer = None

    async def __aenter__(self) -> "GatewayClient":
        return await self.connect()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    async def call(self, verb: str, **fields: object) -> dict:
        """Send one ``{"verb": ...}`` line and await its response line.

        Raises :class:`ServiceError` when the server answers
        ``"ok": false`` or hangs up mid-call.
        """
        if self._writer is None or self._reader is None:
            raise ServiceError("client not connected; call connect() first")
        payload = {"verb": verb, **fields}
        async with self._lock:
            self._writer.write(
                json.dumps(payload, sort_keys=True).encode() + b"\n"
            )
            await self._writer.drain()
            line = await self._reader.readline()
        if not line:
            raise ServiceError(f"server closed the connection during {verb!r}")
        response = json.loads(line)
        if not response.get("ok"):
            raise ServiceError(
                f"{verb} failed: {response.get('error', 'unknown error')}"
            )
        return response

    # -- convenience verbs --------------------------------------------------

    async def ping(self) -> dict:
        """Liveness check; returns the server's clock reading."""
        return await self.call("ping")

    async def submit_request(self, request: Request) -> ServiceOutcome:
        """Submit one request; returns its (possibly deferred) outcome."""
        response = await self.call("request", request=request_to_wire(request))
        return ServiceOutcome.from_dict(response["outcome"])

    async def submit_worker(self, worker: Worker) -> None:
        """Announce one worker arrival."""
        await self.call("worker", worker=worker_to_wire(worker))

    async def outcome_of(self, request_id: str) -> ServiceOutcome | None:
        """Look up a request's latest recorded outcome (None if unknown)."""
        response = await self.call("outcome", request_id=request_id)
        outcome = response.get("outcome")
        return ServiceOutcome.from_dict(outcome) if outcome else None

    async def stats(self) -> dict:
        """The gateway's live statistics."""
        response = await self.call("stats")
        return response["stats"]

    async def snapshot(self, path: str) -> str:
        """Checkpoint the server's matching state to a server-side path."""
        response = await self.call("snapshot", path=path)
        return response["path"]

    async def drain(self) -> dict:
        """Finalize the run; returns the full metrics dict."""
        response = await self.call("drain")
        return response["metrics"]


async def drive_trace(
    client: GatewayClient,
    events: EventStream,
    clock: ServiceClock | None = None,
    stop_after: float | None = None,
) -> dict:
    """Stream ``events`` into a server in order, drain, return metrics.

    ``clock`` paces the submission: with a real-time clock each event
    waits until its timestamp (scaled by the clock's speed); with the
    default ``None`` events are pushed back-to-back and the *server's*
    virtual clock advances from the event timestamps.  ``stop_after``
    truncates the stream at a simulation time (used by snapshot/restore
    drills); truncation skips the drain and returns the live stats dict
    instead.
    """
    for event in events:
        if stop_after is not None and event.time > stop_after:
            return await client.stats()
        if clock is not None and not clock.virtual:
            await clock.sleep_until(event.time)
        if event.kind is EventKind.WORKER:
            assert event.worker is not None
            await client.submit_worker(event.worker)
        else:
            assert event.request is not None
            await client.submit_request(event.request)
    return await client.drain()
