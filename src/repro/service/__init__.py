"""repro.service — an asyncio gateway that serves COM decisions online.

The batch :class:`~repro.core.simulator.Simulator` replays a complete
scenario in one call; this package wraps the same engine — literally the
same :class:`~repro.core.simulator.SimulationSession` code path — behind
a long-running service so matching decisions can be requested one arrival
at a time over a socket:

- :mod:`~repro.service.gateway` — the in-process facade: a serialized
  decision loop around one session, with admission control and metrics.
- :mod:`~repro.service.server` / :mod:`~repro.service.client` — a
  JSONL-over-TCP transport and its asyncio client + trace driver.
- :mod:`~repro.service.clock` — pluggable real-time vs deterministic
  virtual clocks; under the virtual clock a replayed trace produces
  byte-identical metrics to ``Simulator.run``.
- :mod:`~repro.service.admission` — bounded ingress with load shedding.
- :mod:`~repro.service.snapshot` — checkpoint/restore of matching state.
- :mod:`~repro.service.journal` / :mod:`~repro.service.recovery` — the
  ``COMWAL1`` write-ahead event journal and crash recovery (checkpoint +
  suffix replay, byte-identical to the uninterrupted run).
- :mod:`~repro.service.soak` — the chaos soak harness: paced load
  through repeated induced crash→recover cycles, sanitizer on.
- :mod:`~repro.service.dashboard` / :mod:`~repro.service.replay` — live
  ops over the ``COMEVT1`` event stream (:mod:`repro.obs.events`): a
  stdlib HTTP + SSE dashboard, and verified byte-identical replay of
  recorded streams (``com-repro replay-events --verify``).

See docs/SERVICE.md for the protocol and operational guidance,
docs/DASHBOARD.md for the event schema and live-ops endpoints, and
docs/RESILIENCE.md for the crash model.
"""

from repro.service.admission import AdmissionController, AdmissionPolicy
from repro.service.clock import RealTimeClock, ServiceClock, VirtualClock
from repro.service.client import GatewayClient, drive_trace
from repro.service.dashboard import DashboardServer, LiveState
from repro.service.gateway import (
    STATUS_DEFERRED,
    STATUS_SHED,
    MatchingGateway,
    ServiceOutcome,
)
from repro.service.server import (
    DEFAULT_HOST,
    MatchingServer,
    request_from_wire,
    request_to_wire,
    worker_from_wire,
    worker_to_wire,
)
from repro.service.journal import (
    FSYNC_POLICIES,
    JOURNAL_FORMAT,
    Journal,
    JournalConfig,
    JournalRecord,
    scan_journal,
)
from repro.service.recovery import RecoveryReport, recover_gateway
from repro.service.replay import ReplayReport, replay_event_log
from repro.service.snapshot import SNAPSHOT_FORMAT, read_snapshot, write_snapshot
from repro.service.soak import SoakConfig, SoakReport, run_soak

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "DEFAULT_HOST",
    "DashboardServer",
    "FSYNC_POLICIES",
    "GatewayClient",
    "LiveState",
    "ReplayReport",
    "JOURNAL_FORMAT",
    "Journal",
    "JournalConfig",
    "JournalRecord",
    "MatchingGateway",
    "MatchingServer",
    "RealTimeClock",
    "RecoveryReport",
    "SNAPSHOT_FORMAT",
    "STATUS_DEFERRED",
    "STATUS_SHED",
    "ServiceClock",
    "ServiceOutcome",
    "SoakConfig",
    "SoakReport",
    "VirtualClock",
    "drive_trace",
    "read_snapshot",
    "recover_gateway",
    "replay_event_log",
    "request_from_wire",
    "request_to_wire",
    "run_soak",
    "scan_journal",
    "worker_from_wire",
    "worker_to_wire",
    "write_snapshot",
]
