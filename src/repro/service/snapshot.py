"""Checkpoint / restore of the full matching state.

A long-running gateway must survive graceful shutdowns and recover from
crashes without violating the paper's constraints — in particular the
*invariable* constraint (a decided request is never re-matched) means the
service cannot simply replay its input from scratch after a restart: it
must resume from the exact matching state it had reached.

A snapshot is a pickle of the live :class:`~repro.core.simulator.
SimulationSession` — the exchange's waiting lists, every platform's
ledger and algorithm state (including RamCOM's threshold draw and all RNG
stream positions), the reentry/departure queues, deferred requests, the
Eq.-4 acceptance histories, and the resilience layer's fault-injection
cursor when a :class:`~repro.faults.plan.FaultPlan` is active (snapshots
compose with :mod:`repro.faults`: a restored session continues the
recorded fault schedule deterministically).  Restoring and continuing the
stream therefore produces byte-identical results to an uninterrupted run
— pinned by ``tests/test_service.py``.

The file format is a small versioned envelope around the pickle payload;
snapshots are point-in-time artifacts for operational recovery, not a
long-term archival format (they are tied to the package version like any
pickle).  Telemetry bundles hold live tracer state and are not
checkpointed — snapshot a gateway running with ``telemetry=None``.
"""

from __future__ import annotations

import pickle
from pathlib import Path

from repro.core.simulator import SimulationSession
from repro.errors import ServiceError

__all__ = ["SNAPSHOT_FORMAT", "write_snapshot", "read_snapshot"]

#: Bump when the envelope layout changes.
SNAPSHOT_FORMAT = 1

_MAGIC = b"COMSNAP1\n"


def write_snapshot(
    session: SimulationSession,
    outcomes: dict[str, dict],
    path: str | Path,
) -> Path:
    """Checkpoint ``session`` (plus served-outcome log) to ``path``.

    Must be called between decisions (the gateway schedules snapshots on
    its serialized decision loop, which guarantees this).  The session's
    resolution hook is transport state, not matching state — it is
    stripped for the dump and reattached by the restoring gateway.
    """
    if session.config.telemetry is not None:
        raise ServiceError(
            "snapshots require telemetry=None (live tracer state does not "
            "checkpoint); run the gateway without a telemetry bundle"
        )
    path = Path(path)
    hook = session.on_resolution
    session.on_resolution = None
    try:
        payload = pickle.dumps(
            {
                "format": SNAPSHOT_FORMAT,
                "session": session,
                "outcomes": dict(outcomes),
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    finally:
        session.on_resolution = hook
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(_MAGIC + payload)
    return path


def read_snapshot(path: str | Path) -> tuple[SimulationSession, dict[str, dict]]:
    """Load a checkpoint; returns ``(session, outcome_log)``."""
    path = Path(path)
    blob = path.read_bytes()
    if not blob.startswith(_MAGIC):
        raise ServiceError(f"{path}: not a COM service snapshot")
    envelope = pickle.loads(blob[len(_MAGIC):])
    if envelope.get("format") != SNAPSHOT_FORMAT:
        raise ServiceError(
            f"{path}: snapshot format {envelope.get('format')!r} != "
            f"{SNAPSHOT_FORMAT} (rebuild the snapshot with this version)"
        )
    session = envelope["session"]
    if not isinstance(session, SimulationSession):
        raise ServiceError(f"{path}: snapshot payload is not a session")
    return session, envelope.get("outcomes", {})
