"""Checkpoint / restore of the full matching state.

A long-running gateway must survive graceful shutdowns and recover from
crashes without violating the paper's constraints — in particular the
*invariable* constraint (a decided request is never re-matched) means the
service cannot simply replay its input from scratch after a restart: it
must resume from the exact matching state it had reached.

A snapshot is a pickle of the live :class:`~repro.core.simulator.
SimulationSession` — the exchange's waiting lists, every platform's
ledger and algorithm state (including RamCOM's threshold draw and all RNG
stream positions), the reentry/departure queues, deferred requests, the
Eq.-4 acceptance histories, and the resilience layer's fault-injection
cursor when a :class:`~repro.faults.plan.FaultPlan` is active (snapshots
compose with :mod:`repro.faults`: a restored session continues the
recorded fault schedule deterministically).  Restoring and continuing the
stream therefore produces byte-identical results to an uninterrupted run
— pinned by ``tests/test_service.py``.

The file format is a small versioned envelope around the pickle payload:
the ``COMSNAP1`` magic, an 8-byte big-endian payload length, the payload's
CRC32, then the payload.  Writes are **atomic** — the envelope goes to a
sibling tempfile first and lands via :func:`os.replace`, so a crash
mid-checkpoint can never destroy the previous checkpoint (the rotation
the journal's crash-recovery path relies on) — and reads verify the
length and checksum before unpickling, so a truncated or bit-flipped file
is rejected with a clear :class:`~repro.errors.ServiceError` instead of
an unpickling traceback.  Snapshots are point-in-time artifacts for
operational recovery, not a long-term archival format (they are tied to
the package version like any pickle).  Telemetry bundles hold live tracer
state and are not checkpointed — snapshot a gateway running with
``telemetry=None``.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from pathlib import Path

from repro.core.simulator import SimulationSession
from repro.errors import ServiceError

__all__ = ["SNAPSHOT_FORMAT", "write_snapshot", "read_snapshot"]

#: Bump when the envelope layout changes.
SNAPSHOT_FORMAT = 2

_MAGIC = b"COMSNAP1\n"
#: 8-byte payload length + 4-byte CRC32, both big-endian.
_FRAME = struct.Struct(">QI")


def write_snapshot(
    session: SimulationSession,
    outcomes: dict[str, dict],
    path: str | Path,
    meta: dict | None = None,
) -> Path:
    """Checkpoint ``session`` (plus served-outcome log) to ``path``.

    Must be called between decisions (the gateway schedules snapshots on
    its serialized decision loop, which guarantees this).  ``meta``
    carries small JSON-able bookkeeping alongside the state — the journal
    records its replay position (``journal_seq``) there.  The session's
    resolution hook is transport state, not matching state — it is
    stripped for the dump and reattached by the restoring gateway.
    """
    if session.config.telemetry is not None:
        raise ServiceError(
            "snapshots require telemetry=None (live tracer state does not "
            "checkpoint); run the gateway without a telemetry bundle"
        )
    path = Path(path)
    hook = session.on_resolution
    session.on_resolution = None
    try:
        payload = pickle.dumps(
            {
                "format": SNAPSHOT_FORMAT,
                "session": session,
                "outcomes": dict(outcomes),
                "meta": dict(meta) if meta else {},
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    finally:
        session.on_resolution = hook
    path.parent.mkdir(parents=True, exist_ok=True)
    # Atomic rotation: a crash before the replace leaves the previous
    # checkpoint untouched; a crash after it leaves the new one complete.
    staging = path.with_name(path.name + ".tmp")
    staging.write_bytes(
        _MAGIC + _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
    )
    os.replace(staging, path)
    return path


def read_snapshot(
    path: str | Path,
) -> tuple[SimulationSession, dict[str, dict], dict]:
    """Load a checkpoint; returns ``(session, outcome_log, meta)``.

    Rejects anything that is not a complete, intact snapshot — wrong
    magic, truncated payload, checksum mismatch, undecodable pickle —
    with a :class:`ServiceError` naming the problem.
    """
    path = Path(path)
    blob = path.read_bytes()
    if not blob.startswith(_MAGIC):
        raise ServiceError(f"{path}: not a COM service snapshot")
    frame = blob[len(_MAGIC):]
    if len(frame) < _FRAME.size:
        raise ServiceError(f"{path}: snapshot truncated inside the header")
    length, checksum = _FRAME.unpack_from(frame)
    payload = frame[_FRAME.size:]
    if len(payload) != length:
        raise ServiceError(
            f"{path}: snapshot truncated ({len(payload)} of {length} "
            f"payload bytes present)"
        )
    if zlib.crc32(payload) != checksum:
        raise ServiceError(f"{path}: snapshot payload failed its checksum")
    try:
        envelope = pickle.loads(payload)
    except Exception as error:
        raise ServiceError(f"{path}: snapshot payload does not unpickle") from error
    if not isinstance(envelope, dict) or envelope.get("format") != SNAPSHOT_FORMAT:
        got = envelope.get("format") if isinstance(envelope, dict) else None
        raise ServiceError(
            f"{path}: snapshot format {got!r} != {SNAPSHOT_FORMAT} "
            f"(rebuild the snapshot with this version)"
        )
    session = envelope["session"]
    if not isinstance(session, SimulationSession):
        raise ServiceError(f"{path}: snapshot payload is not a session")
    return session, envelope.get("outcomes", {}), envelope.get("meta", {})
