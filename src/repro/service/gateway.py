"""The matching gateway: COM decisions served from a long-running process.

:class:`MatchingGateway` hosts the cooperative platforms — one
:class:`~repro.core.simulator.SimulationSession` holding the shared
:class:`~repro.core.exchange.CooperationExchange`, one algorithm instance
per platform, and all incentive machinery — behind a **serialized decision
queue**: every submitted arrival is processed one at a time, in submission
order, by a single consumer task.  Serialization is what makes the live
service equal to the paper's model (requests are decided one by one,
workers are claimed atomically) and what makes a virtual-clock trace
replay byte-identical to :meth:`repro.core.simulator.Simulator.run`.

With ``batch_max > 1`` the loop adds **micro-batched dispatch**: up to
``batch_max`` already-queued jobs are drained at once (optionally
lingering ``batch_linger_ms`` for more) and the contiguous run of
requests at the batch's head is handed to
:meth:`~repro.core.simulator.SimulationSession.prepare_request_batch`,
which precomputes their Algorithm-2 estimates / MER quotes in one
vectorized kernel invocation (docs/SERVICE.md#micro-batched-dispatch).
Jobs are still processed strictly one at a time in submission order and
speculative results are version/seed-keyed, so batched outcomes are
bit-identical to one-at-a-time dispatch — batching buys throughput,
never different answers.

Layers around the session:

* **admission** (:mod:`repro.service.admission`) — requests are shed with
  an immediate ``shed`` outcome while the queue is at capacity;
* **clock** (:mod:`repro.service.clock`) — live arrivals are stamped with
  :meth:`~repro.service.clock.ServiceClock.now`; replays carry recorded
  timestamps under the virtual clock;
* **instrumentation** — queue depth, shed counts, per-decision outcome
  counts and end-to-end latency flow into a :class:`repro.obs.
  MetricsRegistry`, surfaced via :meth:`stats` (the ``stats`` protocol
  verb);
* **durability** (:mod:`repro.service.journal` /
  :mod:`repro.service.snapshot`) — with a :class:`~repro.service.journal.
  JournalConfig`, every accepted operation is appended to the ``COMWAL1``
  write-ahead journal *before its acknowledgement leaves the process*,
  periodic ``COMSNAP1`` checkpoints rotate atomically, duplicate
  submissions (client retries after a crash) are answered from the
  outcome log instead of re-entering the engine, and
  :func:`~repro.service.recovery.recover_gateway` rebuilds the exact
  pre-crash state;
* **kill points** (:mod:`repro.faults.crash`) — a :class:`~repro.faults.
  CrashPlan` dies deterministically at journal/checkpoint/ack boundaries;
  the gateway fail-stops (the decision loop terminates, pending callers
  see the failure, :attr:`on_crash` fires so transports can drop
  connections like a killed process would);
* **events** (:mod:`repro.obs.events`) — with an attached
  :class:`~repro.obs.events.EventLog`, every arrival, decision,
  resolution and shed is emitted to the ``COMEVT1`` stream on the
  decision loop *after* its journal append, so events never outrun
  durability; the canonical projection of the stream replays
  byte-identically (``com-repro replay-events --verify``) and the live
  dashboard (:mod:`repro.service.dashboard`) tails it over SSE.

The gateway is asyncio-native and transport-agnostic; the JSONL-over-TCP
server in :mod:`repro.service.server` is one transport over it.
"""

from __future__ import annotations

import asyncio
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, replace
from pathlib import Path

from repro.core.base import Decision, DecisionKind
from repro.core.entities import Request, Worker
from repro.core.registry import algorithm_factory
from repro.core.simulator import (
    Scenario,
    SimulationResult,
    SimulationSession,
    Simulator,
    SimulatorConfig,
)
from repro.errors import ConfigurationError, ServiceError
from repro.faults.crash import CrashInjector, CrashPlan
from repro.obs import MetricsRegistry
from repro.obs.events import (
    EVENT_FORMAT,
    EVENT_SCHEMA,
    NULL_EVENT_SINK,
    EventLog,
    EventSink,
    row_digest,
)
from repro.service.admission import AdmissionController, AdmissionPolicy
from repro.service.clock import ServiceClock, VirtualClock
from repro.service.journal import JOURNAL_FORMAT, Journal, JournalConfig
from repro.service.snapshot import read_snapshot, write_snapshot
from repro.service.wire import request_to_wire, worker_to_wire
from repro.utils.timer import Stopwatch

__all__ = ["ServiceOutcome", "MatchingGateway"]

#: Outcome statuses beyond the engine's decision kinds.
STATUS_DEFERRED = "deferred"
STATUS_SHED = "shed"

#: Job kinds whose acknowledgement waits on a journal commit.
_JOURNALED_KINDS = frozenset(("worker", "request", "shed"))

#: Group-commit cap: release acks at least every this many journaled jobs
#: even while the queue stays non-empty, bounding both ack latency under
#: sustained load and the batch a single ``interval`` fsync covers.
_GROUP_COMMIT_MAX = 64

#: Emit a periodic ``metrics`` ops event every this many canonical events.
_METRICS_EVENT_EVERY = 256


@dataclass(frozen=True, slots=True)
class ServiceOutcome:
    """One request's answer as seen by a service client.

    ``status`` is a :class:`~repro.core.base.DecisionKind` value
    (``serve_inner`` / ``serve_outer`` / ``reject``), ``deferred`` (parked
    with a batching algorithm; the final status arrives asynchronously and
    is visible via the ``outcome`` verb), or ``shed`` (rejected by
    admission control without entering the matching engine).
    """

    request_id: str
    status: str
    worker_id: str | None = None
    payment: float = 0.0
    #: End-to-end service latency (submission to answer), milliseconds.
    #: 0.0 for asynchronously resolved (flushed) outcomes.
    latency_ms: float = 0.0

    def as_dict(self) -> dict:
        """JSON-ready representation (the wire format)."""
        return {
            "request_id": self.request_id,
            "status": self.status,
            "worker_id": self.worker_id,
            "payment": self.payment,
            "latency_ms": self.latency_ms,
        }

    def matches(self, other: "ServiceOutcome") -> bool:
        """Same decision, ignoring the measured service latency.

        Recovery verifies each replayed decision against its journaled
        outcome with this — latency is a wall-clock observation, not
        matching state, and legitimately differs between the original
        run and its replay.
        """
        return (
            self.request_id == other.request_id
            and self.status == other.status
            and self.worker_id == other.worker_id
            and self.payment == other.payment
        )

    @classmethod
    def from_dict(cls, payload: dict) -> "ServiceOutcome":
        """Rebuild from :meth:`as_dict` output."""
        return cls(
            request_id=payload["request_id"],
            status=payload["status"],
            worker_id=payload.get("worker_id"),
            payment=payload.get("payment", 0.0),
            latency_ms=payload.get("latency_ms", 0.0),
        )


def _retrieve_exception(task: asyncio.Task) -> None:
    if not task.cancelled():
        task.exception()


def _outcome_from_decision(request: Request, decision: Decision) -> ServiceOutcome:
    if decision.kind is DecisionKind.DEFER:
        return ServiceOutcome(request.request_id, STATUS_DEFERRED)
    return ServiceOutcome(
        request_id=request.request_id,
        status=decision.kind.value,
        worker_id=decision.worker.worker_id if decision.worker else None,
        payment=decision.payment,
    )


class MatchingGateway:
    """Hosts one COM deployment (scenario + algorithm) as a service."""

    def __init__(
        self,
        scenario: Scenario | None = None,
        algorithm: str = "ramcom",
        config: SimulatorConfig | None = None,
        clock: ServiceClock | None = None,
        admission: AdmissionPolicy | None = None,
        session: SimulationSession | None = None,
        journal: JournalConfig | str | Path | None = None,
        crash_plan: CrashPlan | None = None,
        events: EventSink | str | Path | None = None,
        batch_max: int = 1,
        batch_linger_ms: float = 0.0,
    ):
        if session is None:
            if scenario is None:
                raise ConfigurationError(
                    "MatchingGateway needs a scenario (or a restored session)"
                )
            session = Simulator(config or SimulatorConfig()).session(
                scenario, algorithm_factory(algorithm)
            )
        self._session = session  # comlint: loop-owned
        self.config = session.config
        self.scenario = session.scenario
        if batch_max < 1:
            raise ConfigurationError(
                f"batch_max must be >= 1, got {batch_max}"
            )
        if batch_linger_ms < 0:
            raise ConfigurationError(
                f"batch_linger_ms must be >= 0, got {batch_linger_ms}"
            )
        #: Micro-batched dispatch (docs/SERVICE.md#micro-batched-dispatch):
        #: the decision loop drains up to ``batch_max`` already-queued jobs
        #: at once, optionally lingering ``batch_linger_ms`` for more, and
        #: speculatively precomputes the batch's incentive results in one
        #: vectorized kernel call.  Jobs are still *processed* one at a
        #: time in submission order — batching changes throughput, never
        #: outcomes.  ``batch_max=1`` (default) disables it.
        self.batch_max = batch_max
        self.batch_linger_ms = batch_linger_ms
        self.clock = clock or VirtualClock()
        self.admission = AdmissionController(admission)
        self.registry = MetricsRegistry()
        # Concurrency sanitizer (repro.analysis.concurrency): the session
        # carries the monitor (None on the measured disabled path) and
        # the gateway guards its own loop-owned structures through the
        # same instance.  getattr: sessions unpickled from pre-monitor
        # snapshots lack the attribute.
        self._monitor = getattr(session, "concurrency_monitor", None)
        if self._monitor is not None:
            self._monitor.attach_registry(self.registry)
        self.result: SimulationResult | None = None
        #: Cluster territory summary (set by repro.cluster builders on
        #: shard gateways; None for a standalone deployment).  Surfaced
        #: through the ``stats`` verb so GatewayClient.stats() shows
        #: which slice of the world this gateway owns.
        self.shard_info: dict | None = None
        self._outcomes: dict[str, ServiceOutcome] = {}
        self._queue: asyncio.Queue | None = None
        self._loop_task: asyncio.Task | None = None
        self._request_index: dict[str, Request] | None = None
        self._worker_index: dict[str, Worker] | None = None
        self._crash = CrashInjector(crash_plan)
        #: Set to the fatal error when the gateway fail-stops.
        self.crash_error: BaseException | None = None
        #: Called once (with the fatal error) when the gateway fail-stops;
        #: transports use it to drop connections like a killed process.
        self.on_crash: Callable[[BaseException], None] | None = None
        self.journal_config: JournalConfig | None = None
        self._journal: Journal | None = None
        self._journaled_workers: set[str] = set()
        self._last_checkpoint_seq = 0
        # COMEVT1 event stream (repro.obs.events).  The sink is a
        # gateway-level concern, never session state: the session gets
        # pickled into COMSNAP1 checkpoints and must stay free of file
        # handles.  All emission is flag-guarded on ``enabled``, so the
        # default NULL_EVENT_SINK costs attribute reads only.
        self._events: EventSink = NULL_EVENT_SINK
        #: Resolution events buffered until the triggering arrival's
        #: journal append succeeds (exactly-once across crash retries).
        self._pending_resolution_events: list[tuple[float, dict]] = []  # comlint: loop-owned
        self._breaker_trips_seen: dict[str, int] = {}
        self._canonical_events = 0
        session.on_resolution = self._record_resolution
        if journal is not None:
            if not isinstance(journal, JournalConfig):
                journal = JournalConfig(directory=journal)
            self._bootstrap_journal(journal)
        if events is not None:
            if not isinstance(events, EventSink):
                events = EventLog(events, registry=self.registry)
            self.attach_events(events)

    @classmethod
    def from_snapshot(
        cls,
        path: str | Path,
        clock: ServiceClock | None = None,
        admission: AdmissionPolicy | None = None,
    ) -> "MatchingGateway":
        """Rebuild a gateway from a :meth:`snapshot` checkpoint."""
        session, outcomes, _meta = read_snapshot(path)
        gateway = cls(session=session, clock=clock, admission=admission)
        gateway._outcomes = {
            request_id: ServiceOutcome.from_dict(payload)
            for request_id, payload in outcomes.items()
        }
        return gateway

    # -- durability ----------------------------------------------------------

    def _bootstrap_journal(self, config: JournalConfig) -> None:
        """Start a fresh journal: birth record + the anchoring checkpoint.

        The initial checkpoint makes recovery unconditional — every
        journal is paired with at least one ``COMSNAP1`` snapshot, so
        :func:`~repro.service.recovery.recover_gateway` never needs the
        original constructor arguments.
        """
        self.journal_config = config
        self._journal = Journal.create(
            config.journal_path,
            fsync=config.fsync,
            fsync_interval=config.fsync_interval,
            crash=self._crash if self._crash.active else None,
        )
        if self._monitor is not None:
            self._journal.guard = self._monitor.guard("journal-buffer")
        self._journal.append(
            "meta",
            format=JOURNAL_FORMAT,
            algorithm=self._session.algorithm_name,
            scenario=self.scenario.name,
            fsync=config.fsync,
        )
        self._write_checkpoint()

    def _attach_journal(
        self,
        config: JournalConfig,
        journal: Journal,
        journaled_workers: set[str],
        last_checkpoint_seq: int,
    ) -> None:
        """Adopt a recovered journal (used by :mod:`repro.service.recovery`)."""
        self.journal_config = config
        self._journal = journal
        self._journaled_workers = set(journaled_workers)
        self._last_checkpoint_seq = last_checkpoint_seq
        if self._monitor is not None:
            journal.guard = self._monitor.guard("journal-buffer")

    def _write_checkpoint(self) -> None:
        """Rotate the ``COMSNAP1`` checkpoint and mark it in the journal.

        The journal is committed first: the snapshot's ``journal_seq``
        asserts that every earlier record is durable, which buffered
        (group-commit) appends would otherwise violate.
        """
        assert self._journal is not None and self.journal_config is not None
        self._journal.commit()
        if self._crash.active:
            self._crash.fire("checkpoint")
        journal_seq = self._journal.next_seq
        write_snapshot(
            self._session,
            self._outcome_log(),
            self.journal_config.checkpoint_path,
            meta={"journal_seq": journal_seq, "journal_format": JOURNAL_FORMAT},
        )
        self._journal.append("checkpoint", journal_seq=journal_seq)
        self._journal.commit()
        self._last_checkpoint_seq = journal_seq
        self.registry.counter("service_checkpoints_total").inc()

    def _maybe_checkpoint(self) -> None:
        assert self._journal is not None and self.journal_config is not None
        cadence = self.journal_config.checkpoint_every
        if cadence > 0 and (
            self._journal.next_seq - self._last_checkpoint_seq >= cadence
        ):
            self._write_checkpoint()

    def _outcome_log(self) -> dict[str, dict]:
        return {
            request_id: outcome.as_dict()
            for request_id, outcome in self._outcomes.items()
        }

    def _notify_crash(self, error: BaseException) -> None:
        """Fail-stop: record the fatal error and tear transports down.

        Idempotent.  The journal file is left as the crash left it (a
        torn tail stays torn for recovery to truncate; closing may flush
        records whose acks never went out, which is fine — the journal
        is allowed to run ahead of acknowledgements, never behind) —
        only the descriptor is released so recovery can reopen the file.
        """
        if self.crash_error is not None:
            return
        self.crash_error = error
        if self._journal is not None:
            self._journal.close()
        if self._events.enabled:
            # Ops-only crash marker: canonical projections stay identical
            # "modulo crash markers" across crash->recover cycles.
            self._events.emit(
                "crash",
                self._session.last_event_time,
                error=type(error).__name__,
            )
            self._events.close()
        if self._loop_task is not None:
            if not self._loop_task.done():
                self._loop_task.cancel()
            # The loop dies re-raising the fatal error; the caller already
            # received it through its future, so mark it retrieved.
            self._loop_task.add_done_callback(_retrieve_exception)
        if self.on_crash is not None:
            self.on_crash(error)

    # -- the COMEVT1 event stream --------------------------------------------
    # Canonical events (worker / request / decision / resolution / shed /
    # drain) are emitted on the decision loop, *after* the operation's
    # journal append succeeds, so the event stream never runs ahead of
    # durability: a kill point inside an append loses the record AND the
    # event together, and the retry after recovery regenerates both
    # exactly once.  Ops events (breaker / metrics / crash / recovered)
    # annotate the stream but are stripped by the canonical projection.

    @property
    def events(self) -> EventSink:
        """The attached event sink (:data:`NULL_EVENT_SINK` by default)."""
        return self._events

    def attach_events(self, sink: EventSink, recovered: bool = False) -> None:
        """Attach an event sink; a fresh stream opens with a ``meta`` event.

        ``recovered=True`` (used by :func:`repro.service.recovery.
        recover_gateway` with a resumed log) marks the reattachment with
        an ops ``recovered`` event instead — the stream continues where
        the crashed process left it.
        """
        self._events = sink
        if self._monitor is not None and isinstance(sink, EventLog):
            sink.guard = self._monitor.guard("event-ring")
        if not sink.enabled:
            return
        if recovered:
            sink.emit(
                "recovered",
                self._session.last_event_time,
                checkpoint_seq=self._last_checkpoint_seq,
            )
            return
        if not isinstance(sink, EventLog) or sink.next_seq == 0:
            sink.emit(
                "meta",
                0.0,
                schema=EVENT_SCHEMA,
                format=EVENT_FORMAT,
                algorithm=self._session.algorithm_name,
                scenario=self.scenario.name,
                platforms=list(self.scenario.platform_ids),
            )

    def _emit_canonical(self, kind: str, at: float, **fields: object) -> None:
        """Emit one canonical event plus the periodic metrics snapshot."""
        self._events.emit(kind, at, **fields)
        self._canonical_events += 1
        if self._canonical_events % _METRICS_EVENT_EVERY == 0:
            self._events.emit(
                "metrics",
                self._session.last_event_time,
                snapshot=self.registry.snapshot().as_dict(),
            )

    def _flush_resolution_events(self) -> None:
        """Emit resolutions buffered behind their arrival's journal append."""
        for at, fields in self._pending_resolution_events:
            self._emit_canonical("resolution", at, **fields)
        self._pending_resolution_events.clear()

    def _maybe_emit_breaker(self) -> None:
        """Diff cumulative breaker trips; emit an ops event per increase."""
        for platform_id, trips in self._session.breaker_trips().items():
            if trips > self._breaker_trips_seen.get(platform_id, 0):
                self._breaker_trips_seen[platform_id] = trips
                self._events.emit(
                    "breaker",
                    self._session.last_event_time,
                    platform=platform_id,
                    trips=trips,
                )

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        """True while the decision loop is consuming the queue."""
        return self._loop_task is not None and not self._loop_task.done()

    async def start(self) -> "MatchingGateway":
        """Start the decision loop (idempotent)."""
        if self.running:
            return self
        self._queue = asyncio.Queue()
        self._loop_task = asyncio.create_task(self._decision_loop())
        return self

    async def stop(self) -> None:
        """Stop the decision loop without finalizing the simulation."""
        if self._loop_task is None:
            return
        if not self._loop_task.done():
            assert self._queue is not None
            await self._queue.put(("stop", None, self._new_future()))
        await asyncio.gather(self._loop_task, return_exceptions=True)
        self._loop_task = None
        if self._journal is not None:
            self._journal.close()
        if self._events.enabled:
            self._events.flush()

    def _new_future(self) -> asyncio.Future:
        return asyncio.get_running_loop().create_future()

    def _ensure_running(self) -> None:
        if self.crash_error is not None:
            raise ServiceError("gateway crashed") from self.crash_error
        if self._loop_task is None:
            raise ServiceError("gateway not started; call start() first")
        if self._loop_task.done():
            error = self._loop_task.exception()
            if error is not None:
                raise ServiceError("gateway decision loop failed") from error
            raise ServiceError("gateway already stopped")

    # -- the serialized decision loop ---------------------------------------

    async def _decision_loop(self) -> None:
        assert self._queue is not None
        monitor = self._monitor
        if monitor is not None:
            # Claim every guarded structure for this task explicitly:
            # construction / recovery / event attachment may have run
            # inside some other task (first-touch would mis-claim), and
            # a restarted loop re-claims from its dead predecessor.
            monitor.guard("session").bind()
            monitor.guard("journal-buffer").bind()
            monitor.guard("event-ring").bind()
        # Journaled jobs whose acks await the next group commit.
        pending_acks: list[tuple[asyncio.Future, object]] = []
        # Jobs drained ahead of processing by micro-batched dispatch;
        # processed strictly before anything still in the queue.
        backlog: deque[tuple[str, object, asyncio.Future]] = deque()
        try:
            while True:
                if backlog:
                    kind, payload, future = backlog.popleft()
                else:
                    kind, payload, future = await self._queue.get()
                    if self.batch_max > 1 and kind == "request":
                        batch = await self._drain_batch(
                            (kind, payload, future)
                        )
                        if len(batch) > 1:
                            self._speculate(batch)
                            backlog.extend(batch[1:])
                        kind, payload, future = batch[0]
                try:
                    if kind == "stop":
                        self._release_acks(pending_acks)
                        if not future.done():
                            future.set_result(None)
                        return
                    if pending_acks and kind not in _JOURNALED_KINDS:
                        # Control jobs (finalize / snapshot) must not
                        # overtake queued acknowledgements.
                        self._release_acks(pending_acks)
                    if monitor is None:
                        result = self._process(kind, payload)
                    else:
                        with monitor.measure_stall(kind):
                            result = self._process(kind, payload)
                    if self._journal is not None and kind in _JOURNALED_KINDS:
                        # Group commit: the ack waits until the journal
                        # flush that covers this batch.  A serialized
                        # caller (queue empty after every job) degrades to
                        # batch size one — commit-per-record, as before.
                        pending_acks.append((future, result))
                        if (
                            (not backlog and self._queue.empty())
                            or len(pending_acks) >= _GROUP_COMMIT_MAX
                        ):
                            self._release_acks(pending_acks)
                            self._maybe_checkpoint()
                    elif not future.done():
                        future.set_result(result)
                except BaseException as error:
                    # Fail-stop: the caller sees the error through its
                    # future and the loop dies with the same exception, so
                    # a broken engine cannot silently keep answering.
                    if not future.done():
                        future.set_exception(error)
                    self._fail_acks(pending_acks, error)
                    self._notify_crash(error)
                    raise
                self.registry.gauge("service_queue_depth").set(
                    self._queue.qsize()
                )
        finally:
            error = self.crash_error or ServiceError("gateway stopped")
            self._fail_acks(pending_acks, error)
            # Drained-but-unprocessed jobs fail exactly like queued ones.
            for __, __, backlog_future in backlog:
                if not backlog_future.done():
                    backlog_future.set_exception(error)
            backlog.clear()
            self._abort_pending()

    async def _drain_batch(
        self, first: tuple[str, object, asyncio.Future]
    ) -> list[tuple[str, object, asyncio.Future]]:
        """Collect one micro-batch starting from an already-dequeued job.

        Drains up to :attr:`batch_max` already-queued jobs without
        yielding; with a positive :attr:`batch_linger_ms` it then waits —
        bounded by that delay — for more to arrive.  Draining stops at
        the first non-``request`` job (which still joins the batch's
        tail, so queue order is preserved exactly): speculation only
        covers a contiguous run of requests, and control jobs should not
        linger behind it.
        """
        batch = [first]
        deadline: float | None = None
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while len(batch) < self.batch_max and batch[-1][0] == "request":
            if not self._queue.empty():
                batch.append(self._queue.get_nowait())
                continue
            if self.batch_linger_ms <= 0:
                break
            if deadline is None:
                deadline = loop.time() + self.batch_linger_ms / 1e3
            remaining = deadline - loop.time()
            if remaining <= 0:
                break
            try:
                batch.append(
                    await asyncio.wait_for(self._queue.get(), remaining)
                )
            except asyncio.TimeoutError:
                break
        return batch

    def _speculate(
        self, batch: list[tuple[str, object, asyncio.Future]]
    ) -> None:
        """Precompute the batch's incentive results in one kernel call.

        Best-effort and side-effect-free (see
        :meth:`SimulationSession.prepare_request_batch`) — outcomes are
        identical whether speculation hits, misses, or is skipped.
        """
        requests = [
            payload
            for job_kind, payload, __ in batch
            if job_kind == "request" and isinstance(payload, Request)
        ]
        self.registry.counter("service_batches_total").inc()
        self.registry.counter("service_batched_jobs_total").inc(len(batch))
        if len(requests) < 2:
            return
        primed = self._session.prepare_request_batch(requests)
        if primed:
            self.registry.counter("service_speculated_total").inc(primed)

    def _release_acks(
        self, pending_acks: list[tuple[asyncio.Future, object]]
    ) -> None:
        """Commit the journal once, then release the batch's acks in order.

        The ``ack`` kill point fires once per journaled job, after the
        covering commit and before that job's future resolves — a crash
        mid-batch leaves the suffix journaled-but-unacknowledged, which
        recovery replays and dedup absorbs on retry.
        """
        if not pending_acks:
            return
        assert self._journal is not None
        self._journal.commit()
        crash_active = self._crash.active
        for future, result in pending_acks:
            if crash_active:
                self._crash.fire("ack")
            if not future.done():
                future.set_result(result)
        pending_acks.clear()

    @staticmethod
    def _fail_acks(
        pending_acks: list[tuple[asyncio.Future, object]],
        error: BaseException,
    ) -> None:
        """Fail every unreleased ack (their operations never completed)."""
        for future, __ in pending_acks:
            if not future.done():
                future.set_exception(error)
        pending_acks.clear()

    def _abort_pending(self) -> None:
        """Fail any jobs still queued when the loop exits."""
        if self._queue is None:
            return
        while not self._queue.empty():
            __, __, future = self._queue.get_nowait()
            if not future.done():
                future.set_exception(ServiceError("gateway stopped"))

    def _process(self, kind: str, payload: object) -> None:
        if kind == "worker":
            assert isinstance(payload, Worker)
            self._session.submit_worker(payload)
            if self._journal is not None:
                # Encoding sits on the ack critical path: an arrival that
                # IS the scenario's canonical entity (the interning path)
                # journals as a bare ref — the checkpoint already holds
                # the scenario, so the id alone reproduces it on replay.
                if (
                    self._worker_index is not None
                    and self._worker_index.get(payload.worker_id) is payload
                ):
                    self._journal.append_worker_ref(payload.worker_id)
                else:
                    self._journal.append(
                        "worker", worker=worker_to_wire(payload)
                    )
                self._journaled_workers.add(payload.worker_id)
            if self._events.enabled:
                self._flush_resolution_events()
                self._emit_canonical(
                    "worker",
                    payload.arrival_time,
                    worker=worker_to_wire(payload),
                )
            return None
        if kind == "request":
            assert isinstance(payload, Request)
            decision = self._session.submit_request(payload)
            outcome = _outcome_from_decision(payload, decision)
            self._outcomes[payload.request_id] = outcome
            self.registry.counter("service_decisions_total").inc(
                platform=payload.platform_id, status=outcome.status
            )
            if self._journal is not None:
                if (
                    self._request_index is not None
                    and self._request_index.get(payload.request_id) is payload
                ):
                    self._journal.append_request_ref(
                        payload.request_id,
                        outcome.status,
                        outcome.worker_id,
                        outcome.payment,
                    )
                else:
                    self._journal.append(
                        "request",
                        request=request_to_wire(payload),
                        outcome={
                            "status": outcome.status,
                            "worker_id": outcome.worker_id,
                            "payment": outcome.payment,
                        },
                    )
            if self._events.enabled:
                self._flush_resolution_events()
                # One event per request: the arrival (full wire entity,
                # enough to re-drive the engine on replay) and the
                # decision it produced travel together — half the
                # hot-path emissions of a separate arrival event.
                self._emit_canonical(
                    "decision",
                    payload.arrival_time,
                    request=request_to_wire(payload),
                    platform=payload.platform_id,
                    status=outcome.status,
                    worker=outcome.worker_id,
                    payment=outcome.payment,
                )
                self._maybe_emit_breaker()
            return outcome
        if kind == "shed":
            request, outcome = payload  # type: ignore[misc]
            assert isinstance(request, Request)
            assert isinstance(outcome, ServiceOutcome)
            if self._journal is not None:
                self._journal.append(
                    "shed",
                    request_id=outcome.request_id,
                    outcome=outcome.as_dict(),
                )
            if self._events.enabled:
                self._flush_resolution_events()
                self._emit_canonical(
                    "shed",
                    request.arrival_time,
                    request=request_to_wire(request),
                    status=STATUS_SHED,
                )
            return outcome
        if kind == "finalize":
            self.result = self._session.finalize()
            if self._events.enabled:
                self._flush_resolution_events()
                self._emit_canonical(
                    "drain",
                    self._session.last_event_time,
                    metrics_sha256=row_digest(self.metrics_dict()),
                )
                self._events.flush()
            return self.result
        if kind == "snapshot":
            meta = None
            if self._journal is not None:
                self._journal.commit()
                meta = {
                    "journal_seq": self._journal.next_seq,
                    "journal_format": JOURNAL_FORMAT,
                }
            return write_snapshot(
                self._session,
                self._outcome_log(),
                Path(str(payload)),
                meta=meta,
            )
        raise ServiceError(f"unknown gateway job kind {kind!r}")

    def _record_resolution(self, request: Request, decision: Decision) -> None:  # comlint: loop-entry
        """Session hook: a deferred request resolved asynchronously.

        Only ever fires inside :meth:`_process` (flushes happen while an
        arrival is applied on the decision loop), hence the loop-entry
        marker anchoring the ASY004 call graph.
        """
        outcome = _outcome_from_decision(request, decision)
        self._outcomes[request.request_id] = outcome
        self.registry.counter("service_decisions_total").inc(
            platform=request.platform_id, status=f"flushed_{outcome.status}"
        )
        if self._journal is not None:
            # Runs inside _process (flushes happen while an arrival is
            # being applied), so the resolution lands in the journal just
            # before the arrival that triggered it — replay regenerates
            # it at exactly that point.
            self._journal.append("resolution", outcome=outcome.as_dict())
        if self._events.enabled:
            fields = {
                "request": request.request_id,
                "platform": request.platform_id,
                "status": outcome.status,
                "worker": outcome.worker_id,
                "payment": outcome.payment,
            }
            if self._journal is not None:
                # Hold the event until the triggering arrival's own append
                # succeeds: if the journal_append kill point eats that
                # arrival, the regenerated resolution after recovery+retry
                # must be the stream's only copy.
                self._pending_resolution_events.append(
                    (self._session.last_event_time, fields)
                )
            else:
                self._emit_canonical(
                    "resolution", self._session.last_event_time, **fields
                )

    # -- replay interning ----------------------------------------------------
    # A submitted entity that matches its canonical object in the gateway's
    # scenario (by field equality) is replaced with it, so the matching
    # state shares storage with the trace.  The analytic memory metric
    # (§V-C2) id-deduplicates shared objects; without interning, entities
    # arriving as copies — wire-decoded over TCP, or submitted after a
    # snapshot restore whose session holds pickled copies — would be
    # double-counted relative to the batch simulator, breaking the
    # byte-identity of the replayed metric row.

    def _canonical_request(self, request: Request) -> Request:
        if self._request_index is None:
            self._request_index = {
                canonical.request_id: canonical
                for canonical in self.scenario.events.requests
            }
        canonical = self._request_index.get(request.request_id)
        return canonical if canonical == request else request

    def _canonical_worker(self, worker: Worker) -> Worker:
        if self._worker_index is None:
            self._worker_index = {
                canonical.worker_id: canonical
                for canonical in self.scenario.events.workers
            }
        canonical = self._worker_index.get(worker.worker_id)
        return canonical if canonical == worker else worker

    # -- the service surface -------------------------------------------------

    async def submit_worker(self, worker: Worker) -> None:
        """Deliver one worker arrival (never shed — workers add capacity).

        With journaling enabled, re-submitting an already-journaled
        worker id (a client retry after a crash) is an acknowledged
        no-op — the arrival was durably applied the first time.
        """
        self._ensure_running()
        assert self._queue is not None
        if self._journal is not None and worker.worker_id in self._journaled_workers:
            self.registry.counter("service_dedup_total").inc(
                platform=worker.platform_id, entity="worker"
            )
            return
        worker = self._canonical_worker(worker)
        self.registry.counter("service_workers_total").inc(
            platform=worker.platform_id
        )
        future = self._new_future()
        await self._queue.put(("worker", worker, future))
        await future

    async def submit_request(self, request: Request) -> ServiceOutcome:
        """Deliver one request; returns its outcome (or ``shed``).

        End-to-end latency (admission to answer) is recorded in the
        ``service_latency_seconds`` histogram and on the returned outcome.

        With journaling enabled, a request id that already has a durable
        non-``shed`` outcome (a client retry after a crash) is answered
        from the outcome log without re-entering the engine — retries
        never double-apply.  A previously *shed* request is not deduped:
        shedding means it never entered the engine, so a retry is a
        legitimate new attempt.
        """
        self._ensure_running()
        assert self._queue is not None
        if self._journal is not None:
            recorded = self._outcomes.get(request.request_id)
            if recorded is not None and recorded.status != STATUS_SHED:
                self.registry.counter("service_dedup_total").inc(
                    platform=request.platform_id, entity="request"
                )
                return recorded
        request = self._canonical_request(request)
        watch = Stopwatch().start()
        if not self.admission.admit(self._queue.qsize()):
            self.registry.counter("service_shed_total").inc(
                platform=request.platform_id
            )
            self.registry.counter("service_decisions_total").inc(
                platform=request.platform_id, status=STATUS_SHED
            )
            outcome = ServiceOutcome(
                request.request_id, STATUS_SHED, latency_ms=watch.stop() * 1e3
            )
            self._outcomes[request.request_id] = outcome
            if self._journal is not None or self._events.enabled:
                # Durably record / emit the shed answer (on the decision
                # loop, so the append and the event serialize with
                # decision records) before the caller sees it.
                future = self._new_future()
                await self._queue.put(("shed", (request, outcome), future))
                await future
            return outcome
        future = self._new_future()
        await self._queue.put(("request", request, future))
        self.registry.gauge("service_queue_depth").set(self._queue.qsize())
        outcome = await future
        elapsed = watch.stop()
        self.registry.histogram("service_latency_seconds").observe(
            elapsed, platform=request.platform_id
        )
        outcome = replace(outcome, latency_ms=elapsed * 1e3)
        self._outcomes[request.request_id] = outcome
        return outcome

    async def replay_shed(self, request: Request) -> ServiceOutcome:
        """Re-apply a recorded ``shed`` event without consulting admission.

        The replay driver (:mod:`repro.service.replay`) calls this for
        every ``shed`` record in a ``COMEVT1`` stream: the original run's
        load decided the shed; replaying must reproduce it regardless of
        the replaying gateway's own queue depth.  Mirrors the live shed
        path's outcome bookkeeping and decision counters (not the
        admission counters — no admission decision happened here).
        """
        self._ensure_running()
        assert self._queue is not None
        request = self._canonical_request(request)
        self.registry.counter("service_shed_total").inc(
            platform=request.platform_id
        )
        self.registry.counter("service_decisions_total").inc(
            platform=request.platform_id, status=STATUS_SHED
        )
        outcome = ServiceOutcome(request.request_id, STATUS_SHED)
        self._outcomes[request.request_id] = outcome
        future = self._new_future()
        await self._queue.put(("shed", (request, outcome), future))
        await future
        return outcome

    async def drain(self) -> SimulationResult:
        """Finalize the simulation and stop the loop; returns the result.

        Equivalent to the batch engine's end-of-stream step: batching
        algorithms flush, still-deferred requests auto-reject, and the
        :class:`SimulationResult` is measured.  After draining, the
        gateway answers no further arrivals.
        """
        self._ensure_running()
        assert self._queue is not None
        future = self._new_future()
        await self._queue.put(("finalize", None, future))
        result = await future
        await self.stop()
        return result

    async def snapshot(self, path: str | Path) -> Path:
        """Checkpoint the full matching state to ``path``.

        Runs on the decision loop, so the snapshot sits *between*
        decisions — never mid-claim.  Restore with :meth:`from_snapshot`.
        """
        self._ensure_running()
        assert self._queue is not None
        future = self._new_future()
        await self._queue.put(("snapshot", path, future))
        return await future

    def outcome_of(self, request_id: str) -> ServiceOutcome | None:
        """The recorded outcome of a request (None if unknown)."""
        return self._outcomes.get(request_id)

    def metrics_dict(self) -> dict:
        """The drained run's metric row (requires :meth:`drain` first).

        This is the golden-equivalence surface: under the virtual clock it
        is byte-identical to the dict computed from ``Simulator.run`` on
        the same scenario/config.
        """
        if self.result is None:
            raise ServiceError("gateway not drained; no result to report")
        from repro.experiments.metrics import AlgorithmMetrics
        from repro.experiments.reporting import metrics_to_dict

        return metrics_to_dict(AlgorithmMetrics.from_simulation(self.result))

    def stats(self) -> dict:
        """Live service statistics (the ``stats`` protocol verb)."""
        latency = self.registry.histogram("service_latency_seconds")
        pooled_count = sum(
            series.count for series in latency.series().values()
        )
        journal: dict | None = None
        if self.journal_config is not None:
            journal = {
                "path": str(self.journal_config.journal_path),
                "fsync": self.journal_config.fsync,
                "records": (
                    self._journal.next_seq if self._journal is not None else 0
                ),
                "last_checkpoint_seq": self._last_checkpoint_seq,
            }
        events: dict | None = None
        if isinstance(self._events, EventLog):
            events = self._events.stats()
        return {
            "algorithm": self._session.algorithm_name,
            "scenario": self.scenario.name,
            "platforms": list(self.scenario.platform_ids),
            "running": self.running,
            "crashed": self.crash_error is not None,
            "drained": self.result is not None,
            "shard": self.shard_info,
            "pending": self._queue.qsize() if self._queue is not None else 0,
            "decided": pooled_count,
            "clock": {"virtual": self.clock.virtual, "now": self.clock.now()},
            "admission": {
                "max_pending": self.admission.policy.max_pending,
                "offered": self.admission.offered,
                "admitted": self.admission.admitted,
                "shed": self.admission.shed,
                "shed_rate": self.admission.shed_rate,
            },
            "journal": journal,
            "events": events,
            "batching": {
                "batch_max": self.batch_max,
                "batch_linger_ms": self.batch_linger_ms,
                "speculation_hits": (
                    getattr(
                        getattr(self._session, "payment_estimator", None),
                        "prime_hits",
                        0,
                    )
                    + getattr(
                        getattr(self._session, "pricer", None),
                        "prime_hits",
                        0,
                    )
                ),
            },
            "concurrency": (
                self._monitor.stats() if self._monitor is not None else None
            ),
            "metrics": self.registry.snapshot().as_dict(),
        }
