"""The matching gateway: COM decisions served from a long-running process.

:class:`MatchingGateway` hosts the cooperative platforms — one
:class:`~repro.core.simulator.SimulationSession` holding the shared
:class:`~repro.core.exchange.CooperationExchange`, one algorithm instance
per platform, and all incentive machinery — behind a **serialized decision
queue**: every submitted arrival is processed one at a time, in submission
order, by a single consumer task.  Serialization is what makes the live
service equal to the paper's model (requests are decided one by one,
workers are claimed atomically) and what makes a virtual-clock trace
replay byte-identical to :meth:`repro.core.simulator.Simulator.run`.

Layers around the session:

* **admission** (:mod:`repro.service.admission`) — requests are shed with
  an immediate ``shed`` outcome while the queue is at capacity;
* **clock** (:mod:`repro.service.clock`) — live arrivals are stamped with
  :meth:`~repro.service.clock.ServiceClock.now`; replays carry recorded
  timestamps under the virtual clock;
* **instrumentation** — queue depth, shed counts, per-decision outcome
  counts and end-to-end latency flow into a :class:`repro.obs.
  MetricsRegistry`, surfaced via :meth:`stats` (the ``stats`` protocol
  verb);
* **snapshots** (:mod:`repro.service.snapshot`) — the full matching state
  checkpoints between decisions for graceful shutdown / crash recovery.

The gateway is asyncio-native and transport-agnostic; the JSONL-over-TCP
server in :mod:`repro.service.server` is one transport over it.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, replace
from pathlib import Path

from repro.core.base import Decision, DecisionKind
from repro.core.entities import Request, Worker
from repro.core.registry import algorithm_factory
from repro.core.simulator import (
    Scenario,
    SimulationResult,
    SimulationSession,
    Simulator,
    SimulatorConfig,
)
from repro.errors import ConfigurationError, ServiceError
from repro.obs import MetricsRegistry
from repro.service.admission import AdmissionController, AdmissionPolicy
from repro.service.clock import ServiceClock, VirtualClock
from repro.service.snapshot import read_snapshot, write_snapshot
from repro.utils.timer import Stopwatch

__all__ = ["ServiceOutcome", "MatchingGateway"]

#: Outcome statuses beyond the engine's decision kinds.
STATUS_DEFERRED = "deferred"
STATUS_SHED = "shed"


@dataclass(frozen=True, slots=True)
class ServiceOutcome:
    """One request's answer as seen by a service client.

    ``status`` is a :class:`~repro.core.base.DecisionKind` value
    (``serve_inner`` / ``serve_outer`` / ``reject``), ``deferred`` (parked
    with a batching algorithm; the final status arrives asynchronously and
    is visible via the ``outcome`` verb), or ``shed`` (rejected by
    admission control without entering the matching engine).
    """

    request_id: str
    status: str
    worker_id: str | None = None
    payment: float = 0.0
    #: End-to-end service latency (submission to answer), milliseconds.
    #: 0.0 for asynchronously resolved (flushed) outcomes.
    latency_ms: float = 0.0

    def as_dict(self) -> dict:
        """JSON-ready representation (the wire format)."""
        return {
            "request_id": self.request_id,
            "status": self.status,
            "worker_id": self.worker_id,
            "payment": self.payment,
            "latency_ms": self.latency_ms,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ServiceOutcome":
        """Rebuild from :meth:`as_dict` output."""
        return cls(
            request_id=payload["request_id"],
            status=payload["status"],
            worker_id=payload.get("worker_id"),
            payment=payload.get("payment", 0.0),
            latency_ms=payload.get("latency_ms", 0.0),
        )


def _outcome_from_decision(request: Request, decision: Decision) -> ServiceOutcome:
    if decision.kind is DecisionKind.DEFER:
        return ServiceOutcome(request.request_id, STATUS_DEFERRED)
    return ServiceOutcome(
        request_id=request.request_id,
        status=decision.kind.value,
        worker_id=decision.worker.worker_id if decision.worker else None,
        payment=decision.payment,
    )


class MatchingGateway:
    """Hosts one COM deployment (scenario + algorithm) as a service."""

    def __init__(
        self,
        scenario: Scenario | None = None,
        algorithm: str = "ramcom",
        config: SimulatorConfig | None = None,
        clock: ServiceClock | None = None,
        admission: AdmissionPolicy | None = None,
        session: SimulationSession | None = None,
    ):
        if session is None:
            if scenario is None:
                raise ConfigurationError(
                    "MatchingGateway needs a scenario (or a restored session)"
                )
            session = Simulator(config or SimulatorConfig()).session(
                scenario, algorithm_factory(algorithm)
            )
        self._session = session
        self.config = session.config
        self.scenario = session.scenario
        self.clock = clock or VirtualClock()
        self.admission = AdmissionController(admission)
        self.registry = MetricsRegistry()
        self.result: SimulationResult | None = None
        self._outcomes: dict[str, ServiceOutcome] = {}
        self._queue: asyncio.Queue | None = None
        self._loop_task: asyncio.Task | None = None
        self._request_index: dict[str, Request] | None = None
        self._worker_index: dict[str, Worker] | None = None
        session.on_resolution = self._record_resolution

    @classmethod
    def from_snapshot(
        cls,
        path: str | Path,
        clock: ServiceClock | None = None,
        admission: AdmissionPolicy | None = None,
    ) -> "MatchingGateway":
        """Rebuild a gateway from a :meth:`snapshot` checkpoint."""
        session, outcomes = read_snapshot(path)
        gateway = cls(session=session, clock=clock, admission=admission)
        gateway._outcomes = {
            request_id: ServiceOutcome.from_dict(payload)
            for request_id, payload in outcomes.items()
        }
        return gateway

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        """True while the decision loop is consuming the queue."""
        return self._loop_task is not None and not self._loop_task.done()

    async def start(self) -> "MatchingGateway":
        """Start the decision loop (idempotent)."""
        if self.running:
            return self
        self._queue = asyncio.Queue()
        self._loop_task = asyncio.create_task(self._decision_loop())
        return self

    async def stop(self) -> None:
        """Stop the decision loop without finalizing the simulation."""
        if self._loop_task is None:
            return
        if not self._loop_task.done():
            assert self._queue is not None
            await self._queue.put(("stop", None, self._new_future()))
        await asyncio.gather(self._loop_task, return_exceptions=True)
        self._loop_task = None

    def _new_future(self) -> asyncio.Future:
        return asyncio.get_running_loop().create_future()

    def _ensure_running(self) -> None:
        if self._loop_task is None:
            raise ServiceError("gateway not started; call start() first")
        if self._loop_task.done():
            error = self._loop_task.exception()
            if error is not None:
                raise ServiceError("gateway decision loop failed") from error
            raise ServiceError("gateway already stopped")

    # -- the serialized decision loop ---------------------------------------

    async def _decision_loop(self) -> None:
        assert self._queue is not None
        try:
            while True:
                kind, payload, future = await self._queue.get()
                if kind == "stop":
                    if not future.done():
                        future.set_result(None)
                    return
                try:
                    result = self._process(kind, payload)
                except Exception as error:
                    # Fail-stop: the caller sees the error through its
                    # future and the loop dies with the same exception, so
                    # a broken engine cannot silently keep answering.
                    if not future.done():
                        future.set_exception(error)
                    raise
                if not future.done():
                    future.set_result(result)
                self.registry.gauge("service_queue_depth").set(
                    self._queue.qsize()
                )
        finally:
            self._abort_pending()

    def _abort_pending(self) -> None:
        """Fail any jobs still queued when the loop exits."""
        if self._queue is None:
            return
        while not self._queue.empty():
            __, __, future = self._queue.get_nowait()
            if not future.done():
                future.set_exception(ServiceError("gateway stopped"))

    def _process(self, kind: str, payload: object):
        if kind == "worker":
            assert isinstance(payload, Worker)
            self._session.submit_worker(payload)
            return None
        if kind == "request":
            assert isinstance(payload, Request)
            decision = self._session.submit_request(payload)
            outcome = _outcome_from_decision(payload, decision)
            self._outcomes[payload.request_id] = outcome
            self.registry.counter("service_decisions_total").inc(
                platform=payload.platform_id, status=outcome.status
            )
            return outcome
        if kind == "finalize":
            self.result = self._session.finalize()
            return self.result
        if kind == "snapshot":
            return write_snapshot(
                self._session,
                {
                    request_id: outcome.as_dict()
                    for request_id, outcome in self._outcomes.items()
                },
                Path(str(payload)),
            )
        raise ServiceError(f"unknown gateway job kind {kind!r}")

    def _record_resolution(self, request: Request, decision: Decision) -> None:
        """Session hook: a deferred request resolved asynchronously."""
        outcome = _outcome_from_decision(request, decision)
        self._outcomes[request.request_id] = outcome
        self.registry.counter("service_decisions_total").inc(
            platform=request.platform_id, status=f"flushed_{outcome.status}"
        )

    # -- replay interning ----------------------------------------------------
    # A submitted entity that matches its canonical object in the gateway's
    # scenario (by field equality) is replaced with it, so the matching
    # state shares storage with the trace.  The analytic memory metric
    # (§V-C2) id-deduplicates shared objects; without interning, entities
    # arriving as copies — wire-decoded over TCP, or submitted after a
    # snapshot restore whose session holds pickled copies — would be
    # double-counted relative to the batch simulator, breaking the
    # byte-identity of the replayed metric row.

    def _canonical_request(self, request: Request) -> Request:
        if self._request_index is None:
            self._request_index = {
                canonical.request_id: canonical
                for canonical in self.scenario.events.requests
            }
        canonical = self._request_index.get(request.request_id)
        return canonical if canonical == request else request

    def _canonical_worker(self, worker: Worker) -> Worker:
        if self._worker_index is None:
            self._worker_index = {
                canonical.worker_id: canonical
                for canonical in self.scenario.events.workers
            }
        canonical = self._worker_index.get(worker.worker_id)
        return canonical if canonical == worker else worker

    # -- the service surface -------------------------------------------------

    async def submit_worker(self, worker: Worker) -> None:
        """Deliver one worker arrival (never shed — workers add capacity)."""
        self._ensure_running()
        assert self._queue is not None
        worker = self._canonical_worker(worker)
        self.registry.counter("service_workers_total").inc(
            platform=worker.platform_id
        )
        future = self._new_future()
        await self._queue.put(("worker", worker, future))
        await future

    async def submit_request(self, request: Request) -> ServiceOutcome:
        """Deliver one request; returns its outcome (or ``shed``).

        End-to-end latency (admission to answer) is recorded in the
        ``service_latency_seconds`` histogram and on the returned outcome.
        """
        self._ensure_running()
        assert self._queue is not None
        request = self._canonical_request(request)
        watch = Stopwatch().start()
        if not self.admission.admit(self._queue.qsize()):
            self.registry.counter("service_shed_total").inc(
                platform=request.platform_id
            )
            self.registry.counter("service_decisions_total").inc(
                platform=request.platform_id, status=STATUS_SHED
            )
            outcome = ServiceOutcome(
                request.request_id, STATUS_SHED, latency_ms=watch.stop() * 1e3
            )
            self._outcomes[request.request_id] = outcome
            return outcome
        future = self._new_future()
        await self._queue.put(("request", request, future))
        self.registry.gauge("service_queue_depth").set(self._queue.qsize())
        outcome = await future
        elapsed = watch.stop()
        self.registry.histogram("service_latency_seconds").observe(
            elapsed, platform=request.platform_id
        )
        outcome = replace(outcome, latency_ms=elapsed * 1e3)
        self._outcomes[request.request_id] = outcome
        return outcome

    async def drain(self) -> SimulationResult:
        """Finalize the simulation and stop the loop; returns the result.

        Equivalent to the batch engine's end-of-stream step: batching
        algorithms flush, still-deferred requests auto-reject, and the
        :class:`SimulationResult` is measured.  After draining, the
        gateway answers no further arrivals.
        """
        self._ensure_running()
        assert self._queue is not None
        future = self._new_future()
        await self._queue.put(("finalize", None, future))
        result = await future
        await self.stop()
        return result

    async def snapshot(self, path: str | Path) -> Path:
        """Checkpoint the full matching state to ``path``.

        Runs on the decision loop, so the snapshot sits *between*
        decisions — never mid-claim.  Restore with :meth:`from_snapshot`.
        """
        self._ensure_running()
        assert self._queue is not None
        future = self._new_future()
        await self._queue.put(("snapshot", path, future))
        return await future

    def outcome_of(self, request_id: str) -> ServiceOutcome | None:
        """The recorded outcome of a request (None if unknown)."""
        return self._outcomes.get(request_id)

    def metrics_dict(self) -> dict:
        """The drained run's metric row (requires :meth:`drain` first).

        This is the golden-equivalence surface: under the virtual clock it
        is byte-identical to the dict computed from ``Simulator.run`` on
        the same scenario/config.
        """
        if self.result is None:
            raise ServiceError("gateway not drained; no result to report")
        from repro.experiments.metrics import AlgorithmMetrics
        from repro.experiments.reporting import metrics_to_dict

        return metrics_to_dict(AlgorithmMetrics.from_simulation(self.result))

    def stats(self) -> dict:
        """Live service statistics (the ``stats`` protocol verb)."""
        latency = self.registry.histogram("service_latency_seconds")
        pooled_count = sum(
            series.count for series in latency.series().values()
        )
        return {
            "algorithm": self._session.algorithm_name,
            "scenario": self.scenario.name,
            "platforms": list(self.scenario.platform_ids),
            "running": self.running,
            "drained": self.result is not None,
            "pending": self._queue.qsize() if self._queue is not None else 0,
            "decided": pooled_count,
            "clock": {"virtual": self.clock.virtual, "now": self.clock.now()},
            "admission": {
                "max_pending": self.admission.policy.max_pending,
                "offered": self.admission.offered,
                "admitted": self.admission.admitted,
                "shed": self.admission.shed,
                "shed_rate": self.admission.shed_rate,
            },
            "metrics": self.registry.snapshot().as_dict(),
        }
