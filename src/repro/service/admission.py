"""Ingress admission control: bounded queues and load shedding.

A long-running gateway cannot let its serialized decision queue grow
without bound — decision latency is the product's first-class metric
(paper §V-C1), and an unbounded backlog turns a load spike into unbounded
latency for every later request.  The admission layer applies the classic
streaming-admission treatment (cf. budget-aware online task assignment):
each incoming *request* is admitted only while the pending queue is below
a configured depth; beyond it the request is **shed** — answered
immediately with a non-decision, never entering the matching engine.

Worker arrivals are never shed: workers only add capacity, and dropping
them would silently change the matching problem.

Shedding is accounted on the controller (``offered`` / ``admitted`` /
``shed``) and mirrored into the gateway's metrics registry
(``service_shed_total``), so a replayed trace can assert a zero shed rate
— the precondition for golden equivalence with the batch simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AdmissionPolicy", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionPolicy:
    """Backpressure tunables for one gateway.

    Attributes
    ----------
    max_pending:
        Admit a request only while fewer than this many jobs are queued
        for the decision loop.  ``0`` disables the bound (replay mode —
        equivalence with the batch simulator requires that nothing is
        shed).
    """

    max_pending: int = 1024

    def __post_init__(self) -> None:
        if self.max_pending < 0:
            raise ValueError(
                f"max_pending must be >= 0, got {self.max_pending}"
            )

    @property
    def unbounded(self) -> bool:
        """True when the policy never sheds."""
        return self.max_pending == 0


class AdmissionController:
    """Applies an :class:`AdmissionPolicy` and counts the outcomes."""

    def __init__(self, policy: AdmissionPolicy | None = None) -> None:
        self.policy = policy or AdmissionPolicy()
        self.offered = 0
        self.admitted = 0
        self.shed = 0

    def admit(self, pending: int) -> bool:
        """Decide one request given the current queue depth."""
        self.offered += 1
        if not self.policy.unbounded and pending >= self.policy.max_pending:
            self.shed += 1
            return False
        self.admitted += 1
        return True

    @property
    def shed_rate(self) -> float:
        """Fraction of offered requests shed (0.0 before any arrivals)."""
        if self.offered == 0:
            return 0.0
        return self.shed / self.offered
