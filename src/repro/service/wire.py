"""Entity codecs shared by the TCP transport and the event journal.

One canonical JSON-ready dict shape per entity, used in three places:
on the JSONL wire (:mod:`repro.service.server` / :mod:`repro.service.
client`), in ``COMWAL1`` journal records (:mod:`repro.service.journal`),
and by recovery replay (:mod:`repro.service.recovery`).  Field names
match the ``workloads`` JSON serialization, so saved scenarios stream
through unchanged.
"""

from __future__ import annotations

from repro.core.entities import Request, Worker
from repro.errors import ServiceError
from repro.geo.point import Point

__all__ = [
    "request_to_wire",
    "request_from_wire",
    "worker_to_wire",
    "worker_from_wire",
]


def request_to_wire(request: Request) -> dict:
    """JSON-ready view of a request (field names match serialization.py)."""
    return {
        "id": request.request_id,
        "platform": request.platform_id,
        "t": request.arrival_time,
        "x": request.location.x,
        "y": request.location.y,
        "value": request.value,
    }


def request_from_wire(payload: dict, default_time: float = 0.0) -> Request:
    """Decode a request; a missing ``t`` is stamped with ``default_time``."""
    try:
        return Request(
            request_id=str(payload["id"]),
            platform_id=str(payload["platform"]),
            arrival_time=float(payload.get("t", default_time)),
            location=Point(float(payload["x"]), float(payload["y"])),
            value=float(payload["value"]),
        )
    except KeyError as error:
        raise ServiceError(f"request payload missing field {error}") from error


def worker_to_wire(worker: Worker) -> dict:
    """JSON-ready view of a worker."""
    return {
        "id": worker.worker_id,
        "platform": worker.platform_id,
        "t": worker.arrival_time,
        "x": worker.location.x,
        "y": worker.location.y,
        "radius": worker.service_radius,
        "shareable": worker.shareable,
        "departure": worker.departure_time,
    }


def worker_from_wire(payload: dict, default_time: float = 0.0) -> Worker:
    """Decode a worker; a missing ``t`` is stamped with ``default_time``."""
    try:
        departure = payload.get("departure")
        return Worker(
            worker_id=str(payload["id"]),
            platform_id=str(payload["platform"]),
            arrival_time=float(payload.get("t", default_time)),
            location=Point(float(payload["x"]), float(payload["y"])),
            service_radius=float(payload.get("radius", 1.0)),
            shareable=bool(payload.get("shareable", True)),
            departure_time=float(departure) if departure is not None else None,
        )
    except KeyError as error:
        raise ServiceError(f"worker payload missing field {error}") from error
