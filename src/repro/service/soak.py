"""Chaos soak: sustained real-time load through crash→recover cycles.

The crash-recovery property tests pin byte-identity at *individual* kill
points; the soak harness exercises the whole durability story end to end
the way an unlucky deployment would meet it — a journaled gateway under
paced :class:`~repro.service.clock.RealTimeClock` load, killed again and
again at seeded kill points (every channel: lost appends, torn tails,
checkpoint deaths, swallowed acks), recovered with
:func:`~repro.service.recovery.recover_gateway`, and driven on by a
client that simply retries the in-flight arrival, trusting request-ID
dedup to absorb duplicates.

Every run executes with the :class:`~repro.analysis.ConstraintSanitizer`
enabled, so any replay that re-matched a decided request, double-claimed
a worker or broke revenue conservation dies loudly as a
:class:`~repro.errors.SanitizerViolation` instead of skewing a metric.
The final acceptance is total: after the last cycle the drained metrics
row must be **byte-identical** to an uninterrupted
:meth:`~repro.core.simulator.Simulator.run` of the same trace — zero
lost decisions, zero duplicated decisions, however many times the
process died.

Run it from the CLI: ``com-repro soak --cycles 3``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from pathlib import Path

from repro.core.registry import algorithm_factory
from repro.core.simulator import Scenario, Simulator, SimulatorConfig
from repro.errors import ConfigurationError, InducedCrash
from repro.faults.crash import CrashPlan
from repro.obs.events import encode_canonical
from repro.service.clock import RealTimeClock
from repro.service.gateway import MatchingGateway
from repro.service.journal import JournalConfig
from repro.service.recovery import RecoveryReport, recover_gateway
from repro.utils.rng import derive_rng
from repro.utils.timer import Stopwatch

__all__ = ["SoakConfig", "SoakReport", "run_soak"]

#: Kill channels the soak rotates through, cycle by cycle.  Cycle 0 is
#: always ``ack`` (the only channel with no boundaries during journal
#: bootstrap, so the first kill is guaranteed to land mid-trace).
_CHANNEL_ROTATION = ("ack", "journal_append", "journal_torn", "checkpoint")


@dataclass(frozen=True)
class SoakConfig:
    """Tunables for one soak run."""

    #: Crash→recover cycles to induce (the acceptance floor is 3).
    cycles: int = 3
    #: Seed for the kill-point draw (independent of the workload seed).
    seed: int = 0
    #: Real-time clock compression: recorded seconds per wall second.
    #: 0 disables pacing (events pushed back-to-back — still under a
    #: real-time clock, just an unthrottled one).
    speed: float = 0.0
    fsync: str = "interval"
    fsync_interval: int = 16
    #: Small cadence so checkpoint-channel kills have boundaries to hit.
    checkpoint_every: int = 32
    #: Record a ``COMEVT1`` stream alongside the journal and verify,
    #: after the final drain, that replaying it reproduces the run
    #: byte-identically modulo the crash/recovery markers.
    events: bool = True
    #: Gateway micro-batch size (1 = off).  A soak with batching on
    #: must pass the same byte-identity acceptance — batching never
    #: changes outcomes (docs/SERVICE.md#micro-batched-dispatch).
    batch_max: int = 1
    batch_linger_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ConfigurationError(
                f"cycles must be >= 0, got {self.cycles}"
            )
        if self.speed < 0:
            raise ConfigurationError(
                f"speed must be >= 0, got {self.speed}"
            )
        if self.batch_max < 1:
            raise ConfigurationError(
                f"batch_max must be >= 1, got {self.batch_max}"
            )


@dataclass(frozen=True)
class SoakReport:
    """What a soak run did and whether the durability story held."""

    events_submitted: int
    induced_crashes: int
    #: Arrivals re-submitted after a crash (the client retry path).
    retries: int
    recoveries: tuple[RecoveryReport, ...]
    #: Drained row == uninterrupted ``Simulator.run`` row, byte for byte.
    metrics_identical: bool
    metrics_row: dict
    sanitizer_enabled: bool
    wall_seconds: float
    #: Canonical events in the recorded ``COMEVT1`` stream (0 when the
    #: event log was disabled).
    event_count: int = 0
    #: Recorded stream's canonical projection == an uninterrupted
    #: replay's, byte for byte (None when the event log was disabled).
    events_identical: bool | None = None
    #: The concurrency sanitizer (ownership guards + stall detector)
    #: was live for the run — always true for a soak.
    concurrency_enabled: bool = False
    #: Event-loop stalls the final lifetime's monitor observed.
    loop_stalls: int = 0

    @property
    def max_recovery_seconds(self) -> float:
        return max(
            (report.recovery_seconds for report in self.recoveries),
            default=0.0,
        )

    def as_dict(self) -> dict:
        return {
            "events_submitted": self.events_submitted,
            "induced_crashes": self.induced_crashes,
            "retries": self.retries,
            "recoveries": [report.as_dict() for report in self.recoveries],
            "max_recovery_seconds": self.max_recovery_seconds,
            "metrics_identical": self.metrics_identical,
            "sanitizer_enabled": self.sanitizer_enabled,
            "wall_seconds": self.wall_seconds,
            "event_count": self.event_count,
            "events_identical": self.events_identical,
            "concurrency_enabled": self.concurrency_enabled,
            "loop_stalls": self.loop_stalls,
            "metrics_row": self.metrics_row,
        }


def _plan_for_cycle(
    cycle: int, rng: random.Random, remaining: int, checkpoint_every: int
) -> CrashPlan | None:
    """Arm the next kill point, guaranteed to fire within ``remaining`` ops.

    Every accepted arrival crosses one ``journal_append``, one
    ``journal_torn`` and one ``ack`` boundary, so an index below
    ``remaining`` always fires.  ``checkpoint`` boundaries are sparse
    (one per ``checkpoint_every`` records); index 0 — the recovered
    process's first checkpoint — fires iff enough trace remains, else
    the cycle falls back to ``ack``.
    """
    if remaining < 4:
        return None
    channel = _CHANNEL_ROTATION[cycle % len(_CHANNEL_ROTATION)]
    if channel == "checkpoint":
        if remaining > checkpoint_every * 2:
            return CrashPlan.at("checkpoint", 0)
        channel = "ack"
    # Cap at remaining - 2: a retried arrival the dedup absorbs crosses
    # no ack boundary, so the new lifetime may see one fewer than
    # ``remaining`` — the cap keeps the kill inside the trace regardless.
    return CrashPlan.at(channel, 1 + rng.randrange(remaining - 2))


async def run_soak(
    scenario: Scenario,
    directory: str | Path,
    algorithm: str = "ramcom",
    config: SimulatorConfig | None = None,
    soak: SoakConfig | None = None,
) -> SoakReport:
    """Drive ``scenario`` through ``soak.cycles`` crash→recover cycles.

    Raises :class:`~repro.errors.SanitizerViolation` if any replay
    breaks a matching invariant, and :class:`~repro.errors.JournalError`
    if recovery diverges from the journal — a passing soak means the
    crash model held under fire.
    """
    soak = soak or SoakConfig()
    base = config or SimulatorConfig()
    # Sanitize every decision (constraints AND concurrency — the soak is
    # exactly where cross-task races would surface) and keep the row a
    # pure function of the trace (engine-side wall-clock reads off) so
    # the golden compare is exact.
    config = replace(
        base,
        sanitize=True,
        sanitize_concurrency=True,
        measure_response_time=False,
    )
    golden_result = Simulator(config).run(scenario, algorithm_factory(algorithm))
    from repro.experiments.metrics import AlgorithmMetrics
    from repro.experiments.reporting import metrics_to_dict

    golden_row = metrics_to_dict(AlgorithmMetrics.from_simulation(golden_result))

    journal_config = JournalConfig(
        directory=directory,
        fsync=soak.fsync,
        fsync_interval=soak.fsync_interval,
        checkpoint_every=soak.checkpoint_every,
    )
    rng = derive_rng(soak.seed, "service.soak.kill-points")
    events = list(scenario.events)
    clock = RealTimeClock(speed=soak.speed) if soak.speed > 0 else None
    event_log_path = (
        Path(directory) / "events.comevt" if soak.events else None
    )
    watch = Stopwatch().start()

    cycle = 0
    plan = _plan_for_cycle(
        cycle, rng, len(events), soak.checkpoint_every
    ) if soak.cycles > 0 else None
    gateway = MatchingGateway(
        scenario,
        algorithm,
        config,
        clock=clock,
        journal=journal_config,
        crash_plan=plan,
        events=event_log_path,
    )
    gateway.batch_max = soak.batch_max
    gateway.batch_linger_ms = soak.batch_linger_ms
    await gateway.start()

    submitted = 0
    retries = 0
    crashes = 0
    recoveries: list[RecoveryReport] = []
    index = 0
    while index < len(events):
        event = events[index]
        if clock is not None:
            await clock.sleep_until(event.time)
        try:
            if event.worker is not None:
                await gateway.submit_worker(event.worker)
            else:
                assert event.request is not None
                await gateway.submit_request(event.request)
        except InducedCrash:
            # The process "died" mid-call.  Recover from disk, then
            # retry the same arrival — exactly what a reconnecting
            # client would do; dedup absorbs it if it was journaled.
            crashes += 1
            cycle += 1
            next_plan = (
                _plan_for_cycle(
                    cycle, rng, len(events) - index, soak.checkpoint_every
                )
                if cycle < soak.cycles
                else None
            )
            gateway, report = recover_gateway(
                directory,
                fsync=soak.fsync,
                fsync_interval=soak.fsync_interval,
                checkpoint_every=soak.checkpoint_every,
                clock=clock,
                crash_plan=next_plan,
                events=event_log_path,
            )
            recoveries.append(report)
            gateway.batch_max = soak.batch_max
            gateway.batch_linger_ms = soak.batch_linger_ms
            await gateway.start()
            retries += 1
            continue
        submitted += 1
        index += 1

    result = await gateway.drain()
    assert result is not None
    row = gateway.metrics_dict()
    identical = encode_canonical(row) == encode_canonical(golden_row)

    event_count = 0
    events_identical: bool | None = None
    if event_log_path is not None:
        # The stream the crashing run recorded must replay to the same
        # canonical bytes as an uninterrupted run of the same trace —
        # "byte-identical modulo crash markers" (ops events stripped).
        from repro.service.replay import replay_event_log

        replay_report = await replay_event_log(
            event_log_path, scenario, algorithm, config
        )
        event_count = replay_report.canonical_events
        events_identical = replay_report.stream_identical

    return SoakReport(
        events_submitted=submitted,
        induced_crashes=crashes,
        retries=retries,
        recoveries=tuple(recoveries),
        metrics_identical=identical,
        metrics_row=row,
        sanitizer_enabled=True,
        wall_seconds=watch.stop(),
        event_count=event_count,
        events_identical=events_identical,
        concurrency_enabled=True,
        loop_stalls=(
            len(gateway._monitor.stalls) if gateway._monitor is not None else 0
        ),
    )
