"""Stdlib-only live ops dashboard: HTTP + SSE over the event stream.

:class:`DashboardServer` is a hand-rolled ``asyncio`` HTTP/1.1 server —
no web framework, matching the repo's zero-dependency rule — that turns
an attached :class:`~repro.obs.events.EventLog` into an operator view:

``GET /``
    The single-file dashboard page (:mod:`repro.service.dashboard_page`):
    a canvas map of workers/requests/matches, a per-grid-cell load
    heatmap, and rolling throughput / latency / shed-rate panels.
``GET /events``
    The live event stream as Server-Sent Events (``id:`` = event seq,
    ``data:`` = the event record).  New subscribers are caught up from
    the log's in-memory ring, then stream live; a ``: keepalive``
    comment goes out during idle spells so intermediaries keep the
    connection open.
``GET /state``
    One JSON document: gateway :meth:`~repro.service.gateway.
    MatchingGateway.stats` (wall-clock metric families stripped via
    :func:`~repro.obs.summary.strip_wall_clock_families` before export)
    plus the :class:`LiveState` world view the server folds from events.
``GET /metrics``
    The gateway's raw metrics snapshot as JSON.

:class:`LiveState` is a synchronous event observer (it runs inline on
the decision loop's emit, so it stays allocation-light): current worker
and request positions, recent matches, per-cell request counts keyed by
``"i,j"`` grid indices (``cell_km`` resolution — the spatial-load
heatmap), and running totals.  It is transport-independent: tests fold
events through it without any HTTP.

The dashboard works identically under a :class:`~repro.service.clock.
VirtualClock` replay and a :class:`~repro.service.clock.RealTimeClock`
soak — it only consumes events and stats, never the clock.
"""

from __future__ import annotations

import asyncio
import json
import math
from collections import deque

from repro.errors import ServiceError
from repro.obs.events import EventLog, GatewayEvent
from repro.obs.summary import strip_wall_clock_families
from repro.service.gateway import MatchingGateway

__all__ = ["DashboardServer", "LiveState"]

#: Entity cap per table: oldest entries are evicted first (the map shows
#: the recent world, not the full history — the event log holds that).
_MAX_ENTITIES = 5000
#: Recent matches kept for the map's match edges.
_MAX_MATCHES = 200
#: Idle seconds between SSE keepalive comments.
_KEEPALIVE_S = 15.0
#: Largest request head (request line + headers) the server accepts.
_MAX_HEAD_BYTES = 16384


class LiveState:
    """The world as folded from the event stream, for the map view."""

    def __init__(self, cell_km: float = 1.0):
        if cell_km <= 0:
            raise ServiceError(f"cell_km must be > 0, got {cell_km}")
        self.cell_km = cell_km
        #: worker id -> {platform, x, y, status}
        self.workers: dict[str, dict] = {}
        #: request id -> {platform, x, y, status}
        self.requests: dict[str, dict] = {}
        #: Recent matches: {request, worker, platform, payment, time}.
        self.matches: deque[dict] = deque(maxlen=_MAX_MATCHES)
        #: "i,j" -> request count in that cell_km × cell_km grid cell.
        self.cells: dict[str, int] = {}
        #: status -> decision count (resolutions fold into their status).
        self.decisions: dict[str, int] = {}
        self.sheds = 0
        self.payments = 0.0
        self.breaker_trips = 0
        self.crashes = 0
        self.recoveries = 0
        self.drained = False
        self.last_time = 0.0
        self.events_seen = 0
        #: Shard count declared by a cluster stream's meta event (1 for
        #: a single-gateway stream).
        self.shards = 1
        #: Shard ids whose own drain event has been folded.
        self.shards_drained: set[int] = set()

    def _cell_of(self, x: float, y: float) -> str:
        return f"{math.floor(x / self.cell_km)},{math.floor(y / self.cell_km)}"

    @staticmethod
    def _evict(table: dict[str, dict]) -> None:
        while len(table) > _MAX_ENTITIES:
            table.pop(next(iter(table)))

    def apply(self, event: GatewayEvent) -> None:
        """Fold one event (safe to call with every kind, in any order)."""
        self.events_seen += 1
        self.last_time = max(self.last_time, event.time)
        kind = event.kind
        if kind == "worker":
            wire = event.fields["worker"]
            self.workers[wire["id"]] = {
                "platform": wire["platform"],
                "x": wire["x"],
                "y": wire["y"],
                "status": "idle",
            }
            self._evict(self.workers)
        elif kind in ("decision", "resolution"):
            status = str(event.fields.get("status"))
            self.decisions[status] = self.decisions.get(status, 0) + 1
            # A decision carries the arrival's wire entity (it *is* the
            # request's first appearance); a resolution refers back to an
            # earlier arrival by id.
            ref = event.fields.get("request")
            if isinstance(ref, dict):
                request_id = str(ref["id"])
                self.requests[request_id] = {
                    "platform": ref["platform"],
                    "x": ref["x"],
                    "y": ref["y"],
                    "status": status,
                }
                cell = self._cell_of(ref["x"], ref["y"])
                self.cells[cell] = self.cells.get(cell, 0) + 1
                self._evict(self.requests)
            else:
                request_id = str(ref)
                request = self.requests.get(request_id)
                if request is not None:
                    request["status"] = status
            worker_id = event.fields.get("worker")
            if worker_id is not None:
                worker = self.workers.get(str(worker_id))
                if worker is not None:
                    worker["status"] = "matched"
                self.matches.append(
                    {
                        "request": request_id,
                        "worker": worker_id,
                        "platform": event.fields.get("platform"),
                        "payment": event.fields.get("payment", 0.0),
                        "time": event.time,
                    }
                )
                self.payments += float(event.fields.get("payment", 0.0))
        elif kind == "shed":
            wire = event.fields["request"]
            self.sheds += 1
            self.requests[wire["id"]] = {
                "platform": wire["platform"],
                "x": wire["x"],
                "y": wire["y"],
                "status": "shed",
            }
            self._evict(self.requests)
        elif kind == "breaker":
            self.breaker_trips = max(
                self.breaker_trips, int(event.fields.get("trips", 0))
            )
        elif kind == "crash":
            self.crashes += 1
        elif kind == "recovered":
            self.recoveries += 1
        elif kind == "meta":
            self.shards = max(1, int(event.fields.get("shards", 1)))
        elif kind == "drain":
            # A merged cluster stream carries one drain per shard (each
            # annotated with its shard id) plus a final cluster drain (no
            # shard annotation).  The world is drained when every shard
            # is — one shard's drain must not read as the whole cluster's.
            shard = event.fields.get("shard")
            if shard is None:
                self.drained = True
            else:
                self.shards_drained.add(int(shard))
                if len(self.shards_drained) >= self.shards:
                    self.drained = True

    def as_dict(self) -> dict:
        """JSON-ready world view (the ``/state`` body's ``world`` key)."""
        return {
            "cell_km": self.cell_km,
            "workers": dict(self.workers),
            "requests": dict(self.requests),
            "matches": list(self.matches),
            "cells": dict(self.cells),
            "decisions": dict(self.decisions),
            "sheds": self.sheds,
            "payments": self.payments,
            "breaker_trips": self.breaker_trips,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "drained": self.drained,
            "shards": self.shards,
            "shards_drained": sorted(self.shards_drained),
            "last_time": self.last_time,
            "events_seen": self.events_seen,
        }


def _http_response(
    status: str, content_type: str, body: bytes, extra: str = ""
) -> bytes:
    return (
        f"HTTP/1.1 {status}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Cache-Control: no-store\r\n"
        f"Access-Control-Allow-Origin: *\r\n"
        f"{extra}"
        f"Connection: close\r\n\r\n"
    ).encode() + body


class DashboardServer:
    """Serves the live dashboard for one gateway's event stream."""

    def __init__(
        self,
        gateway: MatchingGateway,
        events: EventLog | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        cell_km: float = 1.0,
    ):
        if events is None:
            sink = gateway.events
            if not isinstance(sink, EventLog):
                raise ServiceError(
                    "DashboardServer needs an EventLog: attach one to the "
                    "gateway (events=...) or pass it explicitly"
                )
            events = sink
        self.gateway = gateway
        self.events = events
        self.host = host
        self.port = port
        self.state = LiveState(cell_km=cell_km)
        # Catch up from the ring, then observe live — both synchronous
        # and on the same task, so no event lands in between.
        for event in events.events():
            self.state.apply(event)
        events.add_observer(self.state.apply)
        self._server: asyncio.base_events.Server | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port); valid after :meth:`start`."""
        if self._server is None:
            raise ServiceError("dashboard not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> tuple[str, int]:
        """Bind the HTTP listener; returns the bound address."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        return self.address

    async def stop(self) -> None:
        """Close the listener (open SSE streams end with their sockets)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        """Block serving until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    # -- request handling ----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionResetError,
        ):
            writer.close()
            return
        try:
            request_line = head.split(b"\r\n", 1)[0].decode("latin-1")
            parts = request_line.split(" ")
            method, target = (parts + ["", ""])[:2]
            path = target.split("?", 1)[0]
            if len(head) > _MAX_HEAD_BYTES or method != "GET":
                writer.write(
                    _http_response(
                        "405 Method Not Allowed", "text/plain", b"GET only\n"
                    )
                )
            elif path == "/events":
                await self._serve_events(writer)
            else:
                writer.write(self._answer(path))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # browser tab closed mid-write
        finally:
            writer.close()

    def _answer(self, path: str) -> bytes:
        if path == "/" or path == "/index.html":
            from repro.service.dashboard_page import DASHBOARD_HTML

            return _http_response(
                "200 OK", "text/html; charset=utf-8", DASHBOARD_HTML.encode()
            )
        if path == "/state":
            body = json.dumps(
                {
                    "stats": strip_wall_clock_families(self.gateway.stats()),
                    "world": self.state.as_dict(),
                },
                sort_keys=True,
            ).encode()
            return _http_response("200 OK", "application/json", body)
        if path == "/metrics":
            body = json.dumps(
                self.gateway.registry.snapshot().as_dict(), sort_keys=True
            ).encode()
            return _http_response("200 OK", "application/json", body)
        return _http_response("404 Not Found", "text/plain", b"not found\n")

    async def _serve_events(self, writer: asyncio.StreamWriter) -> None:
        """One SSE subscriber: ring catch-up, then the live queue."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-store\r\n"
            b"Access-Control-Allow-Origin: *\r\n"
            b"Connection: close\r\n\r\n"
        )
        queue = self.events.subscribe()
        last_seq = -1
        try:
            # Catch-up happens after subscribing, so an event emitted in
            # between lands in both — the seq guard drops the duplicate.
            for event in self.events.events():
                writer.write(_sse_frame(event))
                last_seq = event.seq
            await writer.drain()
            while True:
                try:
                    event = await asyncio.wait_for(
                        queue.get(), timeout=_KEEPALIVE_S
                    )
                except asyncio.TimeoutError:
                    writer.write(b": keepalive\n\n")
                    await writer.drain()
                    continue
                if event.seq <= last_seq:
                    continue
                writer.write(_sse_frame(event))
                last_seq = event.seq
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # subscriber went away
        finally:
            self.events.unsubscribe(queue)


def _sse_frame(event: GatewayEvent) -> bytes:
    payload = json.dumps(event.as_dict(), sort_keys=True)
    return f"id: {event.seq}\ndata: {payload}\n\n".encode()
