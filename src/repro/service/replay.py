"""Verified replay of ``COMEVT1`` event streams.

A recorded event log is not just telemetry — its canonical projection is
a complete record of the run: every arrival (inputs) and every decision,
resolution and shed (outputs), in decision-loop order.
:func:`replay_event_log` re-drives the recorded arrivals through a fresh
:class:`~repro.core.simulator.SimulationSession` (in-process, or over the
JSONL/TCP transport with ``tcp=True``) while capturing the replaying
gateway's own event stream, then checks three identities:

1. **stream** — the replayed stream's canonical projection equals the
   recorded one, byte for byte (``seq`` and ops events excluded, so a
   stream recorded across crash→recover cycles compares equal to its
   uninterrupted replay — "byte-identical modulo crash markers");
2. **row** — the replayed drained metrics row equals the row digest the
   recorded ``drain`` event carries (implied by 1, since the digest is
   part of the projection) *and* the row computed by an uninterrupted
   :meth:`~repro.core.simulator.Simulator.run` of the same scenario;
3. **meta** — the stream's ``meta`` event names this engine's schema,
   algorithm, scenario and platforms; replaying a foreign stream raises
   :class:`~repro.errors.ServiceError` instead of diverging quietly.

``com-repro replay-events --verify`` is the CLI face of this module; the
soak harness (:mod:`repro.service.soak`) runs the same verification over
streams recorded under induced crashes.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.simulator import Scenario, SimulatorConfig
from repro.errors import ServiceError
from repro.obs.events import (
    CANONICAL_KINDS,
    EVENT_SCHEMA,
    EventLog,
    GatewayEvent,
    canonical_projection,
    encode_canonical,
    read_events,
    row_digest,
)
from repro.service.gateway import MatchingGateway
from repro.service.wire import request_from_wire, worker_from_wire

__all__ = ["ReplayReport", "replay_event_log"]


@dataclass(frozen=True, slots=True)
class ReplayReport:
    """What a replay drove and which identities held."""

    #: ``"in-process"`` or ``"tcp"``.
    mode: str
    #: Total events in the recorded stream (ops markers included).
    recorded_events: int
    #: Canonical events in the recorded stream (the compared subset).
    canonical_events: int
    #: Arrivals re-driven, by kind.
    workers: int
    requests: int
    sheds: int
    #: Crash markers observed in the recorded stream (ops ``crash``).
    crashes_recorded: int
    #: Canonical projections equal, byte for byte.
    stream_identical: bool
    #: Replayed drained row equals the uninterrupted ``Simulator.run`` row.
    row_identical: bool
    metrics_row: dict

    @property
    def verified(self) -> bool:
        """Every byte-identity held."""
        return self.stream_identical and self.row_identical

    def as_dict(self) -> dict:
        return {
            "mode": self.mode,
            "recorded_events": self.recorded_events,
            "canonical_events": self.canonical_events,
            "workers": self.workers,
            "requests": self.requests,
            "sheds": self.sheds,
            "crashes_recorded": self.crashes_recorded,
            "stream_identical": self.stream_identical,
            "row_identical": self.row_identical,
            "verified": self.verified,
        }


def _validate_meta(
    events: list[GatewayEvent], gateway: MatchingGateway, path: Path
) -> None:
    """The stream's meta event must describe the rebuilt deployment."""
    meta = next((event for event in events if event.kind == "meta"), None)
    if meta is None:
        raise ServiceError(
            f"{path}: stream has no meta event — not a complete COMEVT1 "
            f"recording"
        )
    recorded = {
        "schema": meta.fields.get("schema"),
        "algorithm": meta.fields.get("algorithm"),
        "scenario": meta.fields.get("scenario"),
        "platforms": meta.fields.get("platforms"),
    }
    expected = {
        "schema": EVENT_SCHEMA,
        "algorithm": gateway._session.algorithm_name,
        "scenario": gateway.scenario.name,
        "platforms": list(gateway.scenario.platform_ids),
    }
    if recorded != expected:
        raise ServiceError(
            f"{path}: stream meta {recorded!r} does not match the replay "
            f"deployment {expected!r} — wrong scenario/algorithm for this "
            f"recording"
        )


async def replay_event_log(
    path: str | Path,
    scenario: Scenario,
    algorithm: str = "ramcom",
    config: SimulatorConfig | None = None,
    tcp: bool = False,
    batch_max: int = 1,
    batch_linger_ms: float = 0.0,
) -> ReplayReport:
    """Re-drive a recorded stream and report which identities held.

    The scenario/algorithm/config must be the ones the recording ran
    (the synthetic-workload CLI flags regenerate them from the same
    seed).  ``tcp=True`` routes every arrival through a loopback
    :class:`~repro.service.server.MatchingServer` — same engine, plus
    wire codec coverage.  Raises :class:`~repro.errors.ServiceError`
    when the stream is foreign to the deployment; byte-divergence is
    *reported*, not raised, so callers can print both sides.
    """
    path = Path(path)
    recorded = read_events(path)
    recorded_canonical = [
        event for event in recorded if event.kind in CANONICAL_KINDS
    ]
    crashes_recorded = sum(1 for event in recorded if event.kind == "crash")

    # The replaying gateway records its own stream into an unbounded
    # in-memory ring — the comparison object.
    log = EventLog(ring=0)
    gateway = MatchingGateway(
        scenario, algorithm, config or SimulatorConfig(), events=log
    )
    # Micro-batching is outcome-neutral, so a batched replay must still
    # reproduce the recorded stream byte for byte.
    gateway.batch_max = batch_max
    gateway.batch_linger_ms = batch_linger_ms
    _validate_meta(recorded, gateway, path)

    workers = requests = sheds = 0
    server = None
    client = None
    try:
        if tcp:
            from repro.service.client import GatewayClient
            from repro.service.server import MatchingServer

            server = MatchingServer(gateway)
            host, port = await server.start()
            client = GatewayClient(host, port)
            await client.connect()
        else:
            await gateway.start()
        for event in recorded:
            if event.kind == "worker":
                worker = worker_from_wire(event.fields["worker"])
                workers += 1
                if client is not None:
                    await client.submit_worker(worker)
                else:
                    await gateway.submit_worker(worker)
            elif event.kind == "decision":
                # The decision event carries the arrival's full wire
                # entity — re-driving it regenerates the decision fields.
                request = request_from_wire(event.fields["request"])
                requests += 1
                if client is not None:
                    await client.submit_request(request)
                else:
                    await gateway.submit_request(request)
            elif event.kind == "shed":
                request = request_from_wire(event.fields["request"])
                sheds += 1
                if client is not None:
                    await client.replay_shed(request)
                else:
                    await gateway.replay_shed(request)
        if client is not None:
            await client.drain()
        else:
            await gateway.drain()
    finally:
        if client is not None:
            await client.close()
        if server is not None:
            await server.stop()
        elif gateway.running:
            await gateway.stop()

    row = gateway.metrics_dict()
    stream_identical = canonical_projection(
        log.events()
    ) == canonical_projection(recorded_canonical)

    # The recorded drain event carries the original run's row digest;
    # the replayed row must reproduce it.
    recorded_drain = next(
        (event for event in recorded if event.kind == "drain"), None
    )
    row_identical = recorded_drain is not None and row_digest(
        row
    ) == recorded_drain.fields.get("metrics_sha256")
    if row_identical and sheds == 0:
        # Independent anchor (only meaningful for shed-free recordings —
        # shed requests never reach the batch engine): the replayed row
        # must also equal ``Simulator.run`` on the same trace, the
        # repo's golden-row invariant.
        from repro.core.registry import algorithm_factory
        from repro.core.simulator import Simulator
        from repro.experiments.metrics import AlgorithmMetrics
        from repro.experiments.reporting import metrics_to_dict

        golden = Simulator(gateway.config).run(
            scenario, algorithm_factory(algorithm)
        )
        golden_row = metrics_to_dict(AlgorithmMetrics.from_simulation(golden))
        row_identical = encode_canonical(row) == encode_canonical(golden_row)

    return ReplayReport(
        mode="tcp" if tcp else "in-process",
        recorded_events=len(recorded),
        canonical_events=len(recorded_canonical),
        workers=workers,
        requests=requests,
        sheds=sheds,
        crashes_recorded=crashes_recorded,
        stream_identical=stream_identical,
        row_identical=row_identical,
        metrics_row=row,
    )
